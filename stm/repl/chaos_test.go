package repl_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/orderedstm/ostm/internal/faultfs"
	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/wal"
)

// TestFollowerDiskChaos runs the seeded fault injector against the
// follower's LOCAL disk while a clean leader streams a workload at
// it. Whatever the schedule does — transient and persistent EIO,
// ENOSPC on segment rolls, short writes, stuck fsyncs, under both
// terminal-failure policies — the replication safety property must
// hold: recovering the follower's directory with the real filesystem
// afterwards yields a contiguous prefix of exactly the history the
// leader acknowledged, byte for byte. The follower may stop applying
// (fail-stop surfaces through Err) or sail on volatile (degrade),
// but its disk can never hold an age the leader didn't commit, a gap,
// or a divergent payload. Schedules are deterministic in the seed, so
// a failing (seed, policy) pair replays exactly; the nightly soak
// repeats this suite under -race -count N.
func TestFollowerDiskChaos(t *testing.T) {
	seeds := []struct {
		seed   uint64
		onFail wal.FailPolicy
	}{
		{3, wal.FailStop},
		{9, wal.FailStop},
		{17, wal.FailStop},
		{29, wal.FailStop},
		{4, wal.Degrade},
		{12, wal.Degrade},
		{26, wal.Degrade},
	}
	var injected uint64
	for _, tc := range seeds {
		tc := tc
		t.Run(fmt.Sprintf("seed%d/%s", tc.seed, tc.onFail), func(t *testing.T) {
			injected += testFollowerDiskChaos(t, tc.seed, tc.onFail)
		})
	}
	if injected == 0 {
		t.Fatal("no seed in the set fired a single fault — the schedules miss the run entirely")
	}
}

func testFollowerDiskChaos(t *testing.T, seed uint64, onFail wal.FailPolicy) uint64 {
	const n = 2000
	leader := startLeader(t, stm.OUL, 1, t.TempDir(), wal.Options{SyncEveryN: 8, SegmentBytes: 4 << 10})
	defer leader.closeEngine()
	defer shutdownNow(leader.srv)

	fs := faultfs.FromSeed(nil, seed)
	fdir := t.TempDir()
	fol, f, _ := startFollower(t, stm.OUL, 1, fdir, leader.addr, wal.Options{
		FS:           fs,
		SyncEveryN:   8,
		SegmentBytes: 4 << 10, // frequent rolls give open/rename faults a target
		Retry:        wal.RetryPolicy{Max: 2},
		OnFail:       onFail,
	})

	byAge := make(map[uint64][]byte, n)
	for i := 0; i < n; i++ {
		pl := transferPayload(uint32((i*7)%replAccounts), uint32((i*13+1)%replAccounts))
		tk, err := leader.submit(pl)
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
		byAge[tk.Age()] = pl
	}

	// The follower either catches up (the schedule missed, or degrade
	// detached durability under a still-running engine) or dies on a
	// local durability error. Both are legal; hanging is not.
	deadline := time.Now().Add(30 * time.Second)
	for f.Frontier() < n && f.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatalf("follower wedged at frontier %d (err %v, %d faults: %v)",
				f.Frontier(), f.Err(), fs.Injected(), fs.Log())
		}
		time.Sleep(2 * time.Millisecond)
	}
	frontier, applyErr := f.Frontier(), f.Err()
	_ = f.Close()
	fol.closeEngine() // close errors are the fault schedule talking; recovery is the oracle
	shutdownNow(fol.srv)

	// The oracle reads the surviving disk with the real filesystem —
	// the injector only ever targeted the live writer.
	rec, err := wal.Recover(fdir)
	if err != nil {
		t.Fatalf("seed %d left an unrecoverable follower log: %v (faults: %v)", seed, err, fs.Log())
	}
	if rec.First() != 0 {
		t.Fatalf("follower of an uncompacted leader recovered first age %d, want 0", rec.First())
	}
	if got := rec.Next(); got != rec.First()+uint64(rec.Count()) {
		t.Fatalf("recovered log is not contiguous: first %d + %d records != next %d",
			rec.First(), rec.Count(), got)
	}
	if uint64(rec.Count()) > frontier {
		t.Fatalf("disk holds %d records but only %d were applied — log ran ahead of the engine",
			rec.Count(), frontier)
	}
	for _, r := range rec.Records() {
		want, ok := byAge[r.Age]
		if !ok {
			t.Fatalf("follower disk holds age %d the leader never acknowledged", r.Age)
		}
		if !bytes.Equal(r.Payload, want) {
			t.Fatalf("age %d diverged: follower %x, leader %x", r.Age, r.Payload, want)
		}
	}
	t.Logf("seed %d/%s: %d faults, frontier %d, recovered prefix %d, apply err: %v",
		seed, onFail, fs.Injected(), frontier, rec.Count(), applyErr)
	return fs.Injected()
}
