// Package repl replicates an ordered-commit log to hot-standby
// followers. It is the process topology PR 4's recovery theorem makes
// nearly free: the WAL's record stream — encoded transaction *inputs*
// in predefined age order — is the complete state of the engine, so a
// follower is simply a recovery replay that never ends. The leader's
// Shipper streams durable log bytes to each follower; the Follower
// validates them with the WAL's own frame rule, appends them to its
// own local log (by replaying them through a live pipeline whose
// writer does the appending at commit), and serves reads at its apply
// frontier. Promotion is recovery's restart path run on a live
// process: stop the stream, drain the pipeline, start accepting
// writes.
//
// # Shipping protocol
//
// A follower issues GET /repl/stream?from=N against the leader's h2c
// listener (the same cleartext prior-knowledge HTTP/2 the submit wire
// uses; the response body is the stream). N is the age of the first
// record the follower lacks. The leader answers with a frame stream,
// all integers little-endian:
//
//	u32 len | u8 type | u64 age | u64 aux | u32 crc | payload (len-21 bytes)
//
// Frame types:
//
//	hello (0)      first frame of every stream. age = the leader's
//	               durability frontier, aux = its cumulative framed
//	               log bytes. No payload.
//	record (1)     one WAL record: payload is the record's payload,
//	               age its age, crc the WAL's own record checksum
//	               (wal.RecordCRC), so the follower validates shipped
//	               bytes by exactly the rule recovery validates disk
//	               bytes. Records arrive in contiguous age order
//	               starting at N.
//	heartbeat (2)  age = the leader's durability frontier, aux = its
//	               cumulative framed bytes. Sent whenever the stream
//	               catches up to the frontier and on an idle timer, so
//	               a follower can measure lag while caught up.
//	snapshot (3)   checkpoint bootstrap: payload is the leader's
//	               checkpoint state at age, crc its wal.RecordCRC.
//	               Sent (right after hello) only when the leader has
//	               compacted the records below N away; records resume
//	               at age. A follower accepts it only before its
//	               engine boots — mid-life it is fatal, because a
//	               running pipeline's state cannot be replaced.
//
// Only durable, contiguous-age bytes are ever shipped: the shipper
// wakes on the group-commit completion tap and reads strictly below
// the durability frontier, so a leader crash can never retract a
// shipped record ("no phantom durables" holds across the wire by
// construction).
package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

const (
	frameHello     byte = 0
	frameRecord    byte = 1
	frameHeartbeat byte = 2
	frameSnapshot  byte = 3

	frameHeaderLen = 21 // u8 type + u64 age + u64 aux + u32 crc

	// DefaultMaxFrame bounds accepted stream frames. Snapshot frames
	// carry whole checkpoint states, so the ceiling is far above the
	// submit wire's.
	DefaultMaxFrame = 1 << 28
)

func frameName(t byte) string {
	switch t {
	case frameHello:
		return "hello"
	case frameRecord:
		return "record"
	case frameHeartbeat:
		return "heartbeat"
	case frameSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("type(%d)", t)
}

// appendFrame appends one stream frame to dst.
func appendFrame(dst []byte, typ byte, age, aux uint64, crc uint32, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(frameHeaderLen+len(payload)))
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint64(dst, age)
	dst = binary.LittleEndian.AppendUint64(dst, aux)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	return append(dst, payload...)
}

// frame is one decoded stream frame. payload aliases a fresh
// per-frame allocation; ownership transfers to the consumer.
type frame struct {
	typ     byte
	age     uint64
	aux     uint64
	crc     uint32
	payload []byte
}

// readStreamFrame reads one frame. io.EOF before the first length byte
// is a clean end of stream; anything truncated is an error.
func readStreamFrame(br *bufio.Reader, max int) (frame, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(br, lenb[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return frame{}, fmt.Errorf("repl: truncated frame length: %w", err)
		}
		return frame{}, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if int64(n) > int64(max) {
		return frame{}, fmt.Errorf("repl: frame of %d bytes exceeds limit %d", n, max)
	}
	if n < frameHeaderLen {
		return frame{}, fmt.Errorf("repl: frame of %d bytes is shorter than its %d-byte header", n, frameHeaderLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return frame{}, fmt.Errorf("repl: truncated frame: %w", err)
	}
	return frame{
		typ:     buf[0],
		age:     binary.LittleEndian.Uint64(buf[1:9]),
		aux:     binary.LittleEndian.Uint64(buf[9:17]),
		crc:     binary.LittleEndian.Uint32(buf[17:21]),
		payload: buf[frameHeaderLen:],
	}, nil
}
