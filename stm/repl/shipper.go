package repl

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/orderedstm/ostm/stm/obs"
	"github.com/orderedstm/ostm/stm/wal"
)

// ShipperOptions parameterizes a leader-side Shipper.
type ShipperOptions struct {
	// Heartbeat is the idle heartbeat interval per stream (default
	// 500ms). A caught-up heartbeat is also sent after every drained
	// batch regardless of the timer.
	Heartbeat time.Duration
	// FlushBytes is the egress buffer size that forces a mid-drain
	// flush (default 256 KiB).
	FlushBytes int
	// Obs, when non-nil, registers the leader-side replication metric
	// families (ostm_repl_*).
	Obs *obs.Registry
}

func (o ShipperOptions) withDefaults() ShipperOptions {
	if o.Heartbeat <= 0 {
		o.Heartbeat = 500 * time.Millisecond
	}
	if o.FlushBytes <= 0 {
		o.FlushBytes = 256 << 10
	}
	return o
}

// Shipper is the leader side of replication: an http.Handler that
// streams the local WAL to any number of followers. It taps the
// writer's group-commit completion stage, so each stream wakes the
// moment the durability frontier advances and reads strictly below
// it — only durable, contiguous-age bytes ever leave the process.
// Mount Handler on the leader's listener (serve.Config.Handlers) at
// "/repl/stream".
type Shipper struct {
	w    *wal.Writer
	opts ShipperOptions

	mu    sync.Mutex
	subs  map[*connState]chan struct{}
	stats shipStats
}

// connState is one follower stream's book-keeping, tracked for the
// ship-lag gauge (the slowest connected follower defines the lag).
type connState struct {
	shipped uint64 // ages below it have been written to this stream
}

// NewShipper builds a shipper over the leader's live writer. The
// writer must outlive the shipper's streams.
func NewShipper(w *wal.Writer, opts ShipperOptions) *Shipper {
	s := &Shipper{
		w:    w,
		opts: opts.withDefaults(),
		subs: make(map[*connState]chan struct{}),
	}
	w.Tap(func(uint64) { s.broadcast() })
	if s.opts.Obs != nil {
		s.registerObs(s.opts.Obs)
	}
	return s
}

// broadcast wakes every stream parked waiting for the frontier. The
// per-stream channel has capacity 1, so a slow stream coalesces wakes
// instead of blocking the writer's completer.
func (s *Shipper) broadcast() {
	s.mu.Lock()
	for _, ch := range s.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	s.mu.Unlock()
}

func (s *Shipper) subscribe(c *connState) chan struct{} {
	ch := make(chan struct{}, 1)
	s.mu.Lock()
	s.subs[c] = ch
	s.mu.Unlock()
	return ch
}

func (s *Shipper) unsubscribe(c *connState) {
	s.mu.Lock()
	delete(s.subs, c)
	s.mu.Unlock()
}

// Followers returns how many follower streams are connected.
func (s *Shipper) Followers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// lagAges returns the slowest connected stream's distance behind the
// durability frontier, in ages (0 with no streams).
func (s *Shipper) lagAges() uint64 {
	durable := s.w.Durable()
	s.mu.Lock()
	defer s.mu.Unlock()
	var lag uint64
	for c := range s.subs {
		if d := durable - c.shipped; d > lag {
			lag = d
		}
	}
	return lag
}

// Handler returns the stream endpoint. One request = one follower
// stream; the ?from query parameter is the age of the first record
// the follower lacks.
func (s *Shipper) Handler() http.Handler {
	return http.HandlerFunc(s.serveStream)
}

func (s *Shipper) serveStream(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		http.Error(w, "repl: bad or missing ?from", http.StatusBadRequest)
		return
	}
	conn := &connState{shipped: from}
	wake := s.subscribe(conn)
	defer s.unsubscribe(conn)

	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)

	buf := appendFrame(nil, frameHello, s.w.Durable(), s.w.Bytes(), 0, nil)
	if _, err := w.Write(buf); err != nil {
		return
	}
	_ = rc.Flush()

	cur, err := wal.NewCursor(s.w.Dir(), from)
	if err != nil {
		return
	}
	defer cur.Close()

	hb := time.NewTicker(s.opts.Heartbeat)
	defer hb.Stop()
	segsPrev := cur.Segments()
	for {
		limit := s.w.Durable()
		buf = buf[:0]
		var nrec, nbytes uint64
		for {
			age, payload, ok, nerr := cur.Next(limit)
			if errors.Is(nerr, wal.ErrCompacted) {
				// The records this follower needs are gone (checkpoint
				// truncation). Bootstrap it from the newest checkpoint
				// instead, then resume records at the checkpoint age.
				buf, err = s.appendSnapshot(buf[:0], conn)
				if err != nil {
					return
				}
				cur.Close()
				if cur, err = wal.NewCursor(s.w.Dir(), conn.shipped); err != nil {
					return
				}
				segsPrev = cur.Segments()
				continue
			}
			if nerr != nil {
				// Log corruption or I/O failure: nothing safe to ship.
				return
			}
			if !ok {
				break
			}
			buf = appendFrame(buf, frameRecord, age, 0, wal.RecordCRC(age, payload), payload)
			conn.shipped = age + 1
			nrec++
			nbytes += uint64(wal.FrameSize(payload))
			if len(buf) >= s.opts.FlushBytes {
				if _, err := w.Write(buf); err != nil {
					return
				}
				_ = rc.Flush()
				buf = buf[:0]
			}
		}
		// Caught up to the frontier: a heartbeat closes every drain so
		// the follower sees the frontier it just reached (and can
		// calibrate byte lag against aux).
		buf = appendFrame(buf, frameHeartbeat, s.w.Durable(), s.w.Bytes(), 0, nil)
		if _, err := w.Write(buf); err != nil {
			return
		}
		_ = rc.Flush()
		s.account(nrec, nbytes, cur.Segments()-segsPrev)
		segsPrev = cur.Segments()
		select {
		case <-wake:
		case <-hb.C:
		case <-r.Context().Done():
			return
		}
	}
}

// appendSnapshot frames the newest checkpoint as a bootstrap snapshot
// and advances the stream to its age.
func (s *Shipper) appendSnapshot(buf []byte, conn *connState) ([]byte, error) {
	ages, err := wal.Checkpoints(s.w.Dir())
	if err != nil {
		return nil, err
	}
	if len(ages) == 0 {
		return nil, fmt.Errorf("repl: records below %d compacted but no checkpoint exists", conn.shipped)
	}
	age := ages[len(ages)-1]
	state, err := wal.ReadCheckpoint(s.w.Dir(), age)
	if err != nil {
		return nil, err
	}
	if age < conn.shipped {
		return nil, fmt.Errorf("repl: newest checkpoint %d below compacted request %d", age, conn.shipped)
	}
	buf = appendFrame(buf, frameSnapshot, age, s.w.Bytes(), wal.RecordCRC(age, state), state)
	conn.shipped = age
	s.mu.Lock()
	s.stats.snapshots++
	s.mu.Unlock()
	return buf, nil
}

// shipStats aggregates per-stream egress across the shipper's life.
type shipStats struct {
	records   uint64
	bytes     uint64
	segments  uint64
	snapshots uint64
}

func (s *Shipper) account(records, bytes, segments uint64) {
	s.mu.Lock()
	s.stats.records += records
	s.stats.bytes += bytes
	s.stats.segments += segments
	s.mu.Unlock()
}

// Stats returns cumulative egress counts: records, framed bytes,
// segment files opened, and snapshots shipped across all streams.
func (s *Shipper) Stats() (records, bytes, segments, snapshots uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.records, s.stats.bytes, s.stats.segments, s.stats.snapshots
}
