package repl

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestFrameRoundTrip encodes every frame type and reads it back.
func TestFrameRoundTrip(t *testing.T) {
	cases := []frame{
		{typ: frameHello, age: 42, aux: 9000},
		{typ: frameRecord, age: 7, crc: 0xdeadbeef, payload: []byte("transfer")},
		{typ: frameHeartbeat, age: 1 << 40, aux: 1 << 50},
		{typ: frameSnapshot, age: 600, aux: 3, crc: 1, payload: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	var buf []byte
	for _, c := range cases {
		buf = appendFrame(buf, c.typ, c.age, c.aux, c.crc, c.payload)
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	for i, want := range cases {
		got, err := readStreamFrame(br, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("frame %d (%s): %v", i, frameName(want.typ), err)
		}
		if got.typ != want.typ || got.age != want.age || got.aux != want.aux || got.crc != want.crc {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
		if !bytes.Equal(got.payload, want.payload) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(got.payload), len(want.payload))
		}
	}
	if _, err := readStreamFrame(br, DefaultMaxFrame); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestFrameErrors exercises the reader's rejection paths: truncation
// mid-length, truncation mid-body, an over-limit frame, and a frame
// shorter than its own header.
func TestFrameErrors(t *testing.T) {
	whole := appendFrame(nil, frameRecord, 3, 0, 0x1234, []byte("payload"))

	for cut := 1; cut < len(whole); cut++ {
		br := bufio.NewReader(bytes.NewReader(whole[:cut]))
		if _, err := readStreamFrame(br, DefaultMaxFrame); err == nil || err == io.EOF {
			t.Fatalf("cut at %d: got %v, want truncation error", cut, err)
		}
	}

	br := bufio.NewReader(bytes.NewReader(whole))
	if _, err := readStreamFrame(br, 8); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("over-limit frame: %v", err)
	}

	short := []byte{4, 0, 0, 0, 1, 2, 3, 4} // len=4 < frameHeaderLen
	br = bufio.NewReader(bytes.NewReader(short))
	if _, err := readStreamFrame(br, DefaultMaxFrame); err == nil || !strings.Contains(err.Error(), "shorter than") {
		t.Fatalf("short frame: %v", err)
	}

	if _, err := readStreamFrame(bufio.NewReader(bytes.NewReader(nil)), DefaultMaxFrame); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}
