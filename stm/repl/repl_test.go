package repl_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/repl"
	"github.com/orderedstm/ostm/stm/serve"
	"github.com/orderedstm/ostm/stm/shard"
	"github.com/orderedstm/ostm/stm/wal"
)

const replAccounts = 32

// The test application is the usual conditional bank transfer: 8-byte
// payload = (from, to), amount = age%5+1, applied only when the source
// covers it — age-dependent and branchy, so any ordering or replay
// divergence shows up in the balances.
func transferPayload(from, to uint32) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:4], from)
	binary.LittleEndian.PutUint32(b[4:8], to)
	return b[:]
}

func transferBody(accounts []stm.Var, from, to uint32) stm.Body {
	return func(tx stm.Tx, age int) {
		amt := uint64(age%5) + 1
		bf := tx.Read(&accounts[from])
		if bf >= amt && from != to {
			tx.Write(&accounts[from], bf-amt)
			tx.Write(&accounts[to], tx.Read(&accounts[to])+amt)
		}
	}
}

func decodeTransfer(accounts []stm.Var, data []byte) (from, to uint32, err error) {
	if len(data) != 8 {
		return 0, 0, fmt.Errorf("bad payload length %d", len(data))
	}
	from = binary.LittleEndian.Uint32(data[0:4])
	to = binary.LittleEndian.Uint32(data[4:8])
	if int(from) >= len(accounts) || int(to) >= len(accounts) {
		return 0, 0, fmt.Errorf("transfer %d→%d out of range", from, to)
	}
	return from, to, nil
}

type replCodec struct{ accounts []stm.Var }

func (c replCodec) Encode(payload any) ([]byte, error) { return payload.([]byte), nil }
func (c replCodec) Decode(data []byte) (stm.Body, error) {
	from, to, err := decodeTransfer(c.accounts, data)
	if err != nil {
		return nil, err
	}
	return transferBody(c.accounts, from, to), nil
}

type replShardCodec struct{ accounts []stm.Var }

func (c replShardCodec) Encode(payload any) ([]byte, error) { return payload.([]byte), nil }
func (c replShardCodec) Decode(data []byte) (stm.Access, stm.Body, error) {
	from, to, err := decodeTransfer(c.accounts, data)
	if err != nil {
		return stm.Access{}, nil, err
	}
	return stm.Touches(&c.accounts[from], &c.accounts[to]), transferBody(c.accounts, from, to), nil
}

func newReplAccounts() []stm.Var {
	vs := stm.NewVars(replAccounts)
	for i := range vs {
		vs[i].Store(1000)
	}
	return vs
}

func balances(accounts []stm.Var) []uint64 {
	out := make([]uint64, len(accounts))
	for i := range accounts {
		out[i] = accounts[i].Load()
	}
	return out
}

// foldTransfers is the sequential oracle: apply the transfer
// semantics over plain integers in global-age order.
func foldTransfers(t *testing.T, model []uint64, ages []uint64, byAge map[uint64][]byte) {
	t.Helper()
	for _, age := range ages {
		pl, ok := byAge[age]
		if !ok {
			t.Fatalf("no payload recorded for age %d", age)
		}
		from := binary.LittleEndian.Uint32(pl[0:4])
		to := binary.LittleEndian.Uint32(pl[4:8])
		amt := age%5 + 1
		if model[from] >= amt && from != to {
			model[from] -= amt
			model[to] += amt
		}
	}
}

// ticketLike unifies the two engines' tickets.
type ticketLike interface {
	Age() uint64
	Wait() error
}

// replNode is one process's worth of the topology: accounts, engine,
// local log, and (for a leader) the serving listener with the shipper
// mounted.
type replNode struct {
	accounts []stm.Var
	w        *wal.Writer
	p        *stm.Pipeline
	sp       *shard.ShardedPipeline
	ship     *repl.Shipper
	srv      *serve.Server
	addr     string
}

func (n *replNode) submit(pl []byte) (ticketLike, error) {
	if n.sp != nil {
		return n.sp.SubmitEncoded(pl)
	}
	return n.p.SubmitEncoded(pl)
}

func (n *replNode) drain() error {
	if n.sp != nil {
		return n.sp.Drain()
	}
	return n.p.Drain()
}

func (n *replNode) closeEngine() {
	if n.sp != nil {
		_ = n.sp.Close()
	}
	if n.p != nil {
		_ = n.p.Close()
	}
	if n.w != nil {
		_ = n.w.Close()
	}
}

func shutdownNow(srv *serve.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

// killNow tears the listener down with an already-expired context:
// every live connection — submit streams and replication streams —
// is closed immediately, the closest an in-process test gets to
// SIGKILL on the leader's network face. The engine is deliberately
// left running un-drained, like a process whose NIC died.
func killNow(srv *serve.Server) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = srv.Shutdown(ctx)
}

// startLeader builds a serving leader: engine + WAL + shipper mounted
// at /repl/stream on the same listener as the submit wire.
func startLeader(t *testing.T, alg stm.Algorithm, shards int, dir string, opts wal.Options) *replNode {
	t.Helper()
	w, err := wal.Create(dir, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	n := &replNode{accounts: newReplAccounts(), w: w}
	n.ship = repl.NewShipper(w, repl.ShipperOptions{Heartbeat: 25 * time.Millisecond})
	scfg := serve.Config{
		Handlers: map[string]http.Handler{"/repl/stream": n.ship.Handler()},
	}
	if shards > 1 {
		n.sp, err = shard.New(shard.Config{
			Shards:      shards,
			Pipeline:    stm.Config{Algorithm: alg, Workers: 2},
			WAL:         w,
			Codec:       replShardCodec{n.accounts},
			WaitDurable: true,
			Snapshotter: varsSnapshotter(n.accounts),
		})
		scfg.Sharded = n.sp
	} else {
		n.p, err = stm.NewPipeline(stm.Config{
			Algorithm:   alg,
			Workers:     4,
			WAL:         w,
			Codec:       replCodec{n.accounts},
			WaitDurable: true,
			Snapshotter: varsSnapshotter(n.accounts),
		})
		scfg.Pipeline = n.p
	}
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	n.srv, n.addr = srv, srv.Addr().String()
	return n
}

func varsSnapshotter(accounts []stm.Var) stm.Snapshotter {
	return stm.SnapshotterFuncs{
		SnapshotFunc: func() ([]byte, error) { return stm.SnapshotVars(accounts), nil },
		RestoreFunc:  func(data []byte) error { return stm.RestoreVars(accounts, data) },
	}
}

// startFollower builds a hot standby of the given shape, serving its
// own listener whose write gate refuses until promotion. fromLeader
// reports whether the boot was seeded by a shipped snapshot.
func startFollower(t *testing.T, alg stm.Algorithm, shards int, dir, leader string, opts wal.Options) (*replNode, *repl.Follower, bool) {
	t.Helper()
	n := &replNode{accounts: newReplAccounts()}
	var fromLeader bool
	f, err := repl.StartFollower(repl.FollowerConfig{
		Dir:              dir,
		Leader:           leader,
		WAL:              opts,
		ReconnectBackoff: 20 * time.Millisecond,
		DialTimeout:      time.Second,
		Boot: func(b repl.Boot) (repl.Runtime, error) {
			fromLeader = b.FromLeader
			n.w = b.Writer
			app := b.Snapshot
			var localFirst []uint64
			if app != nil && shards > 1 {
				var err error
				localFirst, app, err = shard.DecodeCheckpoint(app)
				if err != nil {
					return repl.Runtime{}, err
				}
			}
			if app != nil {
				if err := stm.RestoreVars(n.accounts, app); err != nil {
					return repl.Runtime{}, err
				}
			}
			if shards > 1 {
				sp, err := shard.New(shard.Config{
					Shards:         shards,
					Pipeline:       stm.Config{Algorithm: alg, Workers: 2, FirstAge: b.FirstAge},
					WAL:            b.Writer,
					Codec:          replShardCodec{n.accounts},
					WaitDurable:    true,
					Snapshotter:    varsSnapshotter(n.accounts),
					LocalFirstAges: localFirst,
				})
				if err != nil {
					return repl.Runtime{}, err
				}
				n.sp = sp
			} else {
				p, err := stm.NewPipeline(stm.Config{
					Algorithm:   alg,
					Workers:     4,
					FirstAge:    b.FirstAge,
					WAL:         b.Writer,
					Codec:       replCodec{n.accounts},
					WaitDurable: true,
					Snapshotter: varsSnapshotter(n.accounts),
				})
				if err != nil {
					return repl.Runtime{}, err
				}
				n.p = p
			}
			for _, r := range b.Records {
				if _, err := n.submit(r.Payload); err != nil {
					return repl.Runtime{}, err
				}
			}
			if err := n.drain(); err != nil {
				return repl.Runtime{}, err
			}
			return repl.Runtime{
				Submit: func(pl []byte) error { _, err := n.submit(pl); return err },
				Drain:  n.drain,
			}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	scfg := serve.Config{Gate: f.Gate()}
	if n.sp != nil {
		scfg.Sharded = n.sp
	} else {
		scfg.Pipeline = n.p
	}
	srv, err := serve.NewServer(scfg)
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		f.Close()
		t.Fatal(err)
	}
	n.srv, n.addr = srv, srv.Addr().String()
	return n, f, fromLeader
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReplicationBasic streams a workload through a leader and checks
// the follower converges to the identical state, with sane lag and
// throughput accounting on both sides.
func TestReplicationBasic(t *testing.T) {
	const n = 500
	opts := wal.Options{SyncEveryN: 8, SegmentBytes: 4 << 10}
	leader := startLeader(t, stm.OUL, 1, t.TempDir(), opts)
	defer leader.closeEngine()
	defer shutdownNow(leader.srv)

	fol, f, fromLeader := startFollower(t, stm.OUL, 1, t.TempDir(), leader.addr, opts)
	defer fol.closeEngine()
	defer shutdownNow(fol.srv)
	defer f.Close()
	if fromLeader {
		t.Fatal("fresh follower of an uncompacted leader must boot locally, not from a snapshot")
	}

	byAge := make(map[uint64][]byte)
	ages := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		pl := transferPayload(uint32((i*7)%replAccounts), uint32((i*13+1)%replAccounts))
		tk, err := leader.submit(pl)
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
		byAge[tk.Age()] = pl
		ages = append(ages, tk.Age())
	}

	waitFor(t, 10*time.Second, "follower catch-up", func() bool { return f.Frontier() == uint64(n) })
	waitFor(t, 5*time.Second, "byte-lag calibration", func() bool { _, ok := f.LagBytes(); return ok })
	if err := fol.drain(); err != nil {
		t.Fatal(err)
	}
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}

	model := make([]uint64, replAccounts)
	for i := range model {
		model[i] = 1000
	}
	foldTransfers(t, model, ages, byAge)
	got := balances(fol.accounts)
	want := balances(leader.accounts)
	for i := range model {
		if got[i] != model[i] || want[i] != model[i] {
			t.Fatalf("account %d: follower %d, leader %d, model %d", i, got[i], want[i], model[i])
		}
	}

	if lag := f.LagAges(); lag != 0 {
		t.Fatalf("caught-up follower reports age lag %d", lag)
	}
	if rec, bytes := f.Applied(); rec != n || bytes == 0 {
		t.Fatalf("applied (%d records, %d bytes), want %d records", rec, bytes, n)
	}
	if rec, bytes, _, snaps := leader.ship.Stats(); rec < n || bytes == 0 || snaps != 0 {
		t.Fatalf("shipper stats: %d records, %d bytes, %d snapshots", rec, bytes, snaps)
	}
	if fl := leader.ship.Followers(); fl != 1 {
		t.Fatalf("shipper sees %d followers, want 1", fl)
	}
}

// TestFollowerSnapshotBootstrap joins a fresh follower after the
// leader has checkpointed and pruned the log's start: the boot must be
// seeded from the shipped checkpoint, and the follower must still
// converge to the leader's exact state.
func TestFollowerSnapshotBootstrap(t *testing.T) {
	const before, after = 600, 100
	opts := wal.Options{SyncEveryN: 8, SegmentBytes: 2 << 10}
	leader := startLeader(t, stm.OUL, 1, t.TempDir(), opts)
	defer leader.closeEngine()
	defer shutdownNow(leader.srv)

	byAge := make(map[uint64][]byte)
	var ages []uint64
	sub := func(i int) {
		pl := transferPayload(uint32((i*5)%replAccounts), uint32((i*11+3)%replAccounts))
		tk, err := leader.submit(pl)
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
		byAge[tk.Age()] = pl
		ages = append(ages, tk.Age())
	}
	for i := 0; i < before/2; i++ {
		sub(i)
	}
	if _, err := leader.p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := before / 2; i < before; i++ {
		sub(i)
	}
	// The second checkpoint triggers pruning: segments below the first
	// kept checkpoint vanish, so age 0 is no longer servable.
	if _, err := leader.p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if segs, err := wal.Segments(leader.w.Dir()); err != nil || segs[0].FirstAge == 0 {
		t.Fatalf("leader log was not compacted (err %v)", err)
	}

	fol, f, fromLeader := startFollower(t, stm.OUL, 1, t.TempDir(), leader.addr, opts)
	defer fol.closeEngine()
	defer shutdownNow(fol.srv)
	defer f.Close()
	if !fromLeader {
		t.Fatal("follower of a compacted leader must bootstrap from the shipped snapshot")
	}

	for i := before; i < before+after; i++ {
		sub(i)
	}
	waitFor(t, 10*time.Second, "follower catch-up", func() bool { return f.Frontier() == before+after })
	if err := fol.drain(); err != nil {
		t.Fatal(err)
	}
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}

	model := make([]uint64, replAccounts)
	for i := range model {
		model[i] = 1000
	}
	foldTransfers(t, model, ages, byAge)
	got := balances(fol.accounts)
	for i := range model {
		if got[i] != model[i] {
			t.Fatalf("account %d: follower %d, model %d", i, got[i], model[i])
		}
	}
	if _, _, _, snaps := leader.ship.Stats(); snaps != 1 {
		t.Fatalf("shipper shipped %d snapshots, want 1", snaps)
	}
	// The follower's local log must begin at the snapshot age, not 0:
	// its disk is a suffix replica, same as a checkpointed leader's.
	segs, err := wal.Segments(fol.w.Dir())
	if err != nil || len(segs) == 0 || segs[0].FirstAge == 0 {
		t.Fatalf("follower log should start at the snapshot age (segments %v, err %v)", segs, err)
	}
}

// TestKillLeaderPromotion is the hand-off determinism suite: for every
// ordered engine, unsharded and S=2, the leader dies mid-stream, the
// follower promotes, and the promoted state must equal the sequential
// fold of exactly the replicated prefix — plus the new writes the
// promoted leader then accepts. A client dialed at the follower
// observes NotLeader before promotion and, with redial enabled,
// chases the hand-off to a commit.
func TestKillLeaderPromotion(t *testing.T) {
	for _, alg := range stm.OrderedAlgorithms() {
		for _, shards := range []int{1, 2} {
			alg, shards := alg, shards
			t.Run(fmt.Sprintf("%s/S%d", alg, shards), func(t *testing.T) {
				t.Parallel()
				testKillLeaderPromotion(t, alg, shards)
			})
		}
	}
}

func testKillLeaderPromotion(t *testing.T, alg stm.Algorithm, shards int) {
	const n = 200
	opts := wal.Options{SyncEveryN: 4, SegmentBytes: 4 << 10}
	leader := startLeader(t, alg, shards, t.TempDir(), opts)
	defer leader.closeEngine()

	fol, f, _ := startFollower(t, alg, shards, t.TempDir(), leader.addr, opts)
	defer fol.closeEngine()
	defer shutdownNow(fol.srv)
	defer f.Close()

	// Submit the workload on the leader; the follower replicates
	// concurrently. Kill the leader's listener once the follower is
	// mid-stream — the replicated prefix [0, F) is whatever made it.
	tickets := make([]ticketLike, 0, n)
	payloads := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		pl := transferPayload(uint32((i*3)%replAccounts), uint32((i*17+2)%replAccounts))
		tk, err := leader.submit(pl)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
		payloads = append(payloads, pl)
	}
	waitFor(t, 10*time.Second, "follower mid-stream", func() bool { return f.Frontier() >= n/4 })
	killNow(leader.srv)

	// The leader process is gone from the network but its engine ran
	// on: resolve the tickets to learn the true (age, payload) map.
	byAge := make(map[uint64][]byte)
	for i, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatalf("leader ticket %d: %v", i, err)
		}
		byAge[tk.Age()] = payloads[i]
	}

	// Before promotion the follower refuses writes with a typed
	// NotLeader that names the (dead) leader.
	c0, err := serve.Dial(context.Background(), fol.addr)
	if err != nil {
		t.Fatal(err)
	}
	call, err := c0.Submit(transferPayload(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := call.Wait(); !errors.Is(err, serve.ErrNotLeader) {
		t.Fatalf("pre-promotion submit: %v, want NotLeader", err)
	} else if hint, ok := serve.LeaderHint(err); !ok || hint != leader.addr {
		t.Fatalf("leader hint %q (ok=%v), want %q", hint, ok, leader.addr)
	}
	c0.Close()

	// A redial-enabled client submitted before the hand-off must chase
	// it: NotLeader from the follower, dead leader at the hint, then a
	// commit once promotion opens the gate.
	c1, err := serve.Dial(context.Background(), fol.addr, serve.WithNotLeaderRedial())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	extra := transferPayload(2, 3)
	call1, err := c1.Submit(extra)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "redial to begin", func() bool { return c1.Redials() >= 1 })

	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	if !f.Promoted() {
		t.Fatal("Promote returned without setting Promoted")
	}

	age1, err := call1.Wait()
	if err != nil {
		t.Fatalf("redialed call: %v", err)
	}
	frontier := age1 // promotion hands the next age to the first new write
	if got := f.Frontier(); got != frontier {
		t.Fatalf("promoted frontier %d, but first new write got age %d", got, age1)
	}
	byAge[age1] = extra

	// Every replicated age must be one the leader really assigned —
	// the follower can never invent or reorder history.
	ages := make([]uint64, 0, frontier+1)
	for a := uint64(0); a <= frontier; a++ {
		if _, ok := byAge[a]; !ok {
			t.Fatalf("follower holds age %d the leader never acked", a)
		}
		ages = append(ages, a)
	}

	if err := fol.drain(); err != nil {
		t.Fatal(err)
	}
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	// No phantom durables: the promoted log's append frontier is
	// exactly the applied prefix plus the one new commit.
	if next := fol.w.Next(); next != frontier+1 {
		t.Fatalf("promoted log next age %d, want %d", next, frontier+1)
	}

	model := make([]uint64, replAccounts)
	for i := range model {
		model[i] = 1000
	}
	foldTransfers(t, model, ages, byAge)
	got := balances(fol.accounts)
	for i := range model {
		if got[i] != model[i] {
			t.Fatalf("account %d: promoted follower %d, sequential fold %d", i, got[i], model[i])
		}
	}

	// The promoted leader keeps accepting: a plain client commits.
	c2, err := serve.Dial(context.Background(), fol.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	call2, err := c2.Submit(transferPayload(4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if age2, err := call2.Wait(); err != nil || age2 != frontier+1 {
		t.Fatalf("post-promotion commit: age %d err %v, want age %d", age2, err, frontier+1)
	}
}

// TestDetachedFollowerPromotion starts a follower with no leader at
// all — the "leader already dead" path — over an existing local log,
// and promotes it immediately.
func TestDetachedFollowerPromotion(t *testing.T) {
	opts := wal.Options{SyncEveryN: 4}
	dir := t.TempDir()

	// Seed a log by running (and closing) a standalone engine.
	seed := startLeader(t, stm.OUL, 1, dir, opts)
	byAge := make(map[uint64][]byte)
	var ages []uint64
	for i := 0; i < 100; i++ {
		pl := transferPayload(uint32(i%replAccounts), uint32((i+9)%replAccounts))
		tk, err := seed.submit(pl)
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
		byAge[tk.Age()] = pl
		ages = append(ages, tk.Age())
	}
	shutdownNow(seed.srv)
	seed.closeEngine()

	fol, f, fromLeader := startFollower(t, stm.OUL, 1, dir, "", opts)
	defer fol.closeEngine()
	defer shutdownNow(fol.srv)
	defer f.Close()
	if fromLeader {
		t.Fatal("detached boot cannot come from a leader snapshot")
	}
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}

	model := make([]uint64, replAccounts)
	for i := range model {
		model[i] = 1000
	}
	foldTransfers(t, model, ages, byAge)
	got := balances(fol.accounts)
	for i := range model {
		if got[i] != model[i] {
			t.Fatalf("account %d: recovered follower %d, model %d", i, got[i], model[i])
		}
	}
	if f.Frontier() != 100 {
		t.Fatalf("detached frontier %d, want 100", f.Frontier())
	}
}
