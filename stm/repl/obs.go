package repl

import "github.com/orderedstm/ostm/stm/obs"

// Metric families, all under ostm_repl_* with a role label so a
// process that is both (a follower running its own shipper for
// chained replication, or a freshly promoted leader) exposes both
// sides without collision.

// registerObs publishes the leader-side (shipper) families.
func (s *Shipper) registerObs(r *obs.Registry) {
	r = r.With("role", "leader")
	r.GaugeFunc("ostm_repl_followers",
		"follower streams currently connected",
		func() float64 { return float64(s.Followers()) })
	r.GaugeFunc("ostm_repl_ship_lag_ages",
		"ages the slowest connected follower stream trails the durability frontier",
		func() float64 { return float64(s.lagAges()) })
	r.CounterFunc("ostm_repl_records_shipped_total",
		"WAL records written to follower streams",
		func() float64 { rec, _, _, _ := s.Stats(); return float64(rec) })
	r.CounterFunc("ostm_repl_bytes_shipped_total",
		"framed WAL bytes written to follower streams",
		func() float64 { _, b, _, _ := s.Stats(); return float64(b) })
	r.CounterFunc("ostm_repl_segments_shipped_total",
		"segment files opened by follower stream cursors",
		func() float64 { _, _, seg, _ := s.Stats(); return float64(seg) })
	r.CounterFunc("ostm_repl_snapshots_shipped_total",
		"checkpoint snapshots shipped to bootstrap compacted followers",
		func() float64 { _, _, _, sn := s.Stats(); return float64(sn) })
}

// registerObs publishes the follower-side families.
func (f *Follower) registerObs(r *obs.Registry) {
	r = r.With("role", "follower")
	r.GaugeFunc("ostm_repl_apply_frontier",
		"age of the next record the follower will apply; everything below it is in the live pipeline",
		func() float64 { return float64(f.applyNext.Load()) })
	r.GaugeFunc("ostm_repl_leader_frontier",
		"leader durability frontier most recently heard over the stream",
		func() float64 { return float64(f.leaderFrontier.Load()) })
	r.GaugeFunc("ostm_repl_lag_ages",
		"ages the apply frontier trails the last heard leader frontier",
		func() float64 { return float64(f.LagAges()) })
	r.GaugeFunc("ostm_repl_lag_bytes",
		"framed bytes the follower's log trails the leader's (0 until first catch-up calibrates the history offset)",
		func() float64 { lag, _ := f.LagBytes(); return float64(lag) })
	r.CounterFunc("ostm_repl_applied_total",
		"records applied through the live pipeline",
		func() float64 { return float64(f.applied.Load()) })
	r.CounterFunc("ostm_repl_applied_bytes_total",
		"framed bytes of applied records",
		func() float64 { return float64(f.appliedB.Load()) })
	r.CounterFunc("ostm_repl_reconnects_total",
		"times the leader stream was (re)established",
		func() float64 { return float64(f.reconnects.Load()) })
	r.CounterFunc("ostm_repl_snapshots_received_total",
		"checkpoint snapshots accepted at bootstrap",
		func() float64 { return float64(f.snapshots.Load()) })
	r.GaugeFunc("ostm_repl_promoted",
		"1 once the follower has been promoted to leader",
		func() float64 {
			if f.promoted.Load() {
				return 1
			}
			return 0
		})
}
