package repl

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/orderedstm/ostm/stm/obs"
	"github.com/orderedstm/ostm/stm/serve"
	"github.com/orderedstm/ostm/stm/wal"
)

// Boot is everything a follower hands its owner to build the live
// pipeline, assembled from local crash recovery plus (for a fresh
// follower of a compacted leader) the leader's checkpoint. The owner
// must: build its engine with FirstAge as the pipeline's first age,
// restore Snapshot into the engine's variables when non-nil, attach
// Writer as the pipeline's WAL, replay Records in order through
// SubmitEncoded, and drain — exactly the recovery dance a restarting
// leader performs, because a follower boot IS a recovery that then
// keeps replaying from the network instead of stopping.
type Boot struct {
	// FirstAge is the pipeline's starting age (checkpoint age when a
	// snapshot is present, else the log's first record).
	FirstAge uint64
	// Snapshot is the checkpoint state to restore before replay (nil
	// when none); SnapshotAge its frontier.
	Snapshot    []byte
	SnapshotAge uint64
	// FromLeader reports that Snapshot came over the wire (fresh
	// follower of a compacted leader) rather than from local disk.
	FromLeader bool
	// Records is the local replay suffix, in age order.
	Records []wal.Record
	// Writer is the follower's local log, already positioned at the
	// replay frontier. Attach it as the pipeline's WAL: the pipeline
	// then appends every applied record locally at commit, which is
	// what keeps the follower's log a contiguous, durable prefix of
	// the leader's at all times.
	Writer *wal.Writer
}

// Runtime is the running engine a follower drives: Submit feeds one
// encoded record (the owner's SubmitEncoded), Drain awaits full
// commit + durability of everything submitted (the owner's Drain).
type Runtime struct {
	Submit func(payload []byte) error
	Drain  func() error
}

// FollowerConfig parameterizes StartFollower.
type FollowerConfig struct {
	// Dir is the follower's local WAL directory.
	Dir string
	// Leader is the leader's listener address ("host:port"). Empty
	// means start detached: boot from local disk and wait for
	// promotion (used when the leader is already gone).
	Leader string
	// Boot builds the live engine from the assembled Boot; see Boot.
	Boot func(Boot) (Runtime, error)
	// WAL configures the local writer.
	WAL wal.Options
	// Obs, when non-nil, registers the follower-side replication
	// metric families (ostm_repl_*).
	Obs *obs.Registry
	// ReconnectBackoff paces stream redials (default 100ms, doubled
	// to a 2s cap).
	ReconnectBackoff time.Duration
	// MaxFrame bounds accepted stream frames (default
	// DefaultMaxFrame).
	MaxFrame int
	// DialTimeout bounds each connect attempt, including the initial
	// bootstrap probe (default 3s).
	DialTimeout time.Duration
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = 100 * time.Millisecond
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 3 * time.Second
	}
	return c
}

// Follower is a hot standby: it boots its engine by local crash
// recovery (or a leader checkpoint when starting fresh against a
// compacted leader), then applies the leader's record stream through
// the live pipeline for as long as it runs. Reads are served at the
// apply frontier; writes are refused through Gate until Promote.
type Follower struct {
	cfg    FollowerConfig
	writer *wal.Writer
	rt     Runtime

	applyNext atomic.Uint64 // age of the next record to apply
	promoted  atomic.Bool

	leaderFrontier atomic.Uint64 // newest hello/heartbeat age
	leaderBytes    atomic.Uint64 // newest hello/heartbeat aux
	localBytes     atomic.Uint64 // boot baseline + applied frame bytes
	byteSkew       atomic.Int64  // leaderBytes - localBytes at caught-up
	calibrated     atomic.Bool

	applied    atomic.Uint64
	appliedB   atomic.Uint64
	reconnects atomic.Uint64
	snapshots  atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	loopDone chan struct{}
	connMu   sync.Mutex
	cancel   context.CancelFunc // cancels the in-flight stream request

	errMu sync.Mutex
	err   error // fatal stream error; the follower has stopped applying
}

// streamConn is one open stream to the leader.
type streamConn struct {
	resp *http.Response
	br   *bufio.Reader
	tr   *http.Transport
}

func (sc *streamConn) close() {
	sc.resp.Body.Close()
	sc.tr.CloseIdleConnections()
}

// dialStream opens the leader's stream endpoint starting at from.
func (f *Follower) dialStream(from uint64) (*streamConn, error) {
	tr := &http.Transport{}
	tr.Protocols = new(http.Protocols)
	tr.Protocols.SetUnencryptedHTTP2(true)
	ctx, cancel := context.WithCancel(context.Background())
	f.connMu.Lock()
	f.cancel = cancel
	f.connMu.Unlock()
	url := fmt.Sprintf("http://%s/repl/stream?from=%d", f.cfg.Leader, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	// The dial timeout covers connect + headers; once streaming, the
	// context stays live until stop/promotion cancels it.
	timer := time.AfterFunc(f.cfg.DialTimeout, cancel)
	resp, err := tr.RoundTrip(req)
	timer.Stop()
	if err != nil {
		cancel()
		return nil, fmt.Errorf("repl: dial %s: %w", f.cfg.Leader, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("repl: leader answered %s", resp.Status)
	}
	return &streamConn{resp: resp, br: bufio.NewReaderSize(resp.Body, 1<<20), tr: tr}, nil
}

// StartFollower recovers the local log, boots the engine through
// cfg.Boot, and starts applying the leader's stream in the
// background. A fresh follower (empty Dir) asks the leader first: if
// the leader has compacted away the log's start, the boot is seeded
// from the leader's checkpoint snapshot instead of local disk.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" || cfg.Boot == nil {
		return nil, errors.New("repl: FollowerConfig.Dir and Boot are required")
	}
	rec, err := wal.Recover(cfg.Dir)
	if err != nil {
		return nil, err
	}
	f := &Follower{cfg: cfg, stop: make(chan struct{}), loopDone: make(chan struct{})}

	boot := Boot{
		FirstAge:    rec.First(),
		Snapshot:    rec.CheckpointState(),
		SnapshotAge: rec.CheckpointAge(),
		Records:     rec.Records(),
	}
	var sc *streamConn
	var pending []frame // frames consumed during bootstrap, not yet applied
	fresh := rec.Next() == 0 && !rec.HasCheckpoint()
	if fresh && cfg.Leader != "" {
		// Bootstrap probe: connect before booting, because only the
		// leader knows whether age 0 still exists in its log. The
		// first post-hello frame decides (the shipper always follows
		// hello promptly with a snapshot, a record, or a caught-up
		// heartbeat).
		if sc, err = f.dialStream(0); err == nil {
			var first frame
			if first, err = f.expectHello(sc); err != nil {
				sc.close()
				return nil, err
			}
			if first.typ == frameSnapshot {
				if wal.RecordCRC(first.age, first.payload) != first.crc {
					sc.close()
					return nil, errors.New("repl: bootstrap snapshot failed its checksum")
				}
				boot = Boot{
					FirstAge:    first.age,
					Snapshot:    first.payload,
					SnapshotAge: first.age,
					FromLeader:  true,
				}
				f.snapshots.Add(1)
			} else {
				pending = append(pending, first)
			}
		} else {
			sc = nil // leader unreachable: boot local, keep retrying in the loop
		}
	}

	if boot.FromLeader {
		// Seed the local log exactly as a checkpointed leader would
		// look after recovery: a fresh log starting at the snapshot
		// age, carrying the snapshot as its first checkpoint.
		w, werr := wal.Create(cfg.Dir, boot.SnapshotAge, cfg.WAL)
		if werr != nil {
			sc.close()
			return nil, werr
		}
		if werr := w.Checkpoint(boot.SnapshotAge, boot.Snapshot); werr != nil {
			sc.close()
			w.Close()
			return nil, werr
		}
		f.writer = w
	} else {
		w, werr := rec.Writer(cfg.WAL)
		if werr != nil {
			if sc != nil {
				sc.close()
			}
			return nil, werr
		}
		f.writer = w
	}
	boot.Writer = f.writer

	rt, err := cfg.Boot(boot)
	if err != nil {
		if sc != nil {
			sc.close()
		}
		f.writer.Close()
		return nil, err
	}
	if rt.Submit == nil || rt.Drain == nil {
		if sc != nil {
			sc.close()
		}
		return nil, errors.New("repl: Boot must return a Runtime with Submit and Drain")
	}
	f.rt = rt
	f.applyNext.Store(f.writer.Next())
	f.localBytes.Store(f.writer.Bytes())
	if cfg.Obs != nil {
		f.registerObs(cfg.Obs)
	}
	go f.loop(sc, pending)
	return f, nil
}

// expectHello reads the stream's hello and the first substantive
// frame after it (the shipper always sends one promptly).
func (f *Follower) expectHello(sc *streamConn) (frame, error) {
	h, err := readStreamFrame(sc.br, f.cfg.MaxFrame)
	if err != nil {
		return frame{}, fmt.Errorf("repl: reading hello: %w", err)
	}
	if h.typ != frameHello {
		return frame{}, fmt.Errorf("repl: stream opened with %s, want hello", frameName(h.typ))
	}
	f.leaderFrontier.Store(h.age)
	f.leaderBytes.Store(h.aux)
	return readStreamFrame(sc.br, f.cfg.MaxFrame)
}

// loop is the apply loop: (re)connect, validate, apply, repeat until
// stopped. sc, when non-nil, is the bootstrap connection with hello
// already consumed; pending are frames read during bootstrap.
func (f *Follower) loop(sc *streamConn, pending []frame) {
	defer close(f.loopDone)
	backoff := f.cfg.ReconnectBackoff
	for _, fr := range pending {
		if err := f.apply(fr); err != nil {
			f.fail(err)
			if sc != nil {
				sc.close()
			}
			return
		}
	}
	for {
		select {
		case <-f.stop:
			if sc != nil {
				sc.close()
			}
			return
		default:
		}
		if sc == nil {
			if f.cfg.Leader == "" {
				// Detached: nothing to stream; wait for promotion.
				<-f.stop
				return
			}
			var err error
			if sc, err = f.dialStream(f.applyNext.Load()); err != nil {
				select {
				case <-f.stop:
					return
				case <-time.After(backoff):
				}
				if backoff *= 2; backoff > 2*time.Second {
					backoff = 2 * time.Second
				}
				continue
			}
			f.reconnects.Add(1)
			h, err := readStreamFrame(sc.br, f.cfg.MaxFrame)
			if err != nil || h.typ != frameHello {
				sc.close()
				sc = nil
				continue
			}
			f.leaderFrontier.Store(h.age)
			f.leaderBytes.Store(h.aux)
			backoff = f.cfg.ReconnectBackoff
		}
		fr, err := readStreamFrame(sc.br, f.cfg.MaxFrame)
		if err != nil {
			sc.close()
			sc = nil
			continue // stream dropped; redial from the apply frontier
		}
		if err := f.apply(fr); err != nil {
			f.fail(err)
			sc.close()
			return
		}
	}
}

// apply consumes one stream frame. Record frames go through exactly
// the validation recovery applies to disk bytes — CRC over (length,
// age, payload) and contiguous expected age — then into the live
// pipeline; the pipeline's attached writer appends them locally at
// commit, so the local log never holds an age the engine has not
// applied.
func (f *Follower) apply(fr frame) error {
	switch fr.typ {
	case frameRecord:
		expect := f.applyNext.Load()
		if fr.age != expect {
			return fmt.Errorf("repl: stream broke age order: got %d, want %d", fr.age, expect)
		}
		if wal.RecordCRC(fr.age, fr.payload) != fr.crc {
			return fmt.Errorf("repl: record %d failed its checksum", fr.age)
		}
		if err := f.rt.Submit(fr.payload); err != nil {
			return fmt.Errorf("repl: applying record %d: %w", fr.age, err)
		}
		f.applyNext.Store(fr.age + 1)
		f.applied.Add(1)
		f.appliedB.Add(uint64(wal.FrameSize(fr.payload)))
		f.localBytes.Add(uint64(wal.FrameSize(fr.payload)))
		return nil
	case frameHeartbeat, frameHello:
		f.leaderFrontier.Store(fr.age)
		f.leaderBytes.Store(fr.aux)
		if fr.age == f.applyNext.Load() {
			// Caught up: leader and follower name the same frontier, so
			// the difference of their cumulative byte counters is the
			// constant history offset between the two logs. Keep the
			// smallest observed value — the leader's counter can run a
			// transient in-flight group ahead of its frontier.
			skew := int64(fr.aux) - int64(f.localBytes.Load())
			if !f.calibrated.Load() || skew < f.byteSkew.Load() {
				f.byteSkew.Store(skew)
				f.calibrated.Store(true)
			}
		}
		return nil
	case frameSnapshot:
		// A running pipeline's state cannot be replaced: landing here
		// means the follower fell behind the leader's checkpoint
		// retention mid-life. Rebuilding needs a fresh start.
		return fmt.Errorf("repl: leader compacted past our frontier %d (snapshot at %d): follower must restart from scratch", f.applyNext.Load(), fr.age)
	default:
		return fmt.Errorf("repl: unknown frame %s", frameName(fr.typ))
	}
}

// fail latches a fatal apply error.
func (f *Follower) fail(err error) {
	f.errMu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.errMu.Unlock()
}

// Err returns the fatal stream error, if the apply loop died on one.
func (f *Follower) Err() error {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.err
}

// Frontier returns the apply frontier: every age below it has been
// submitted to the live pipeline. Reads served against the follower's
// state observe a prefix at least this fresh once drained.
func (f *Follower) Frontier() uint64 { return f.applyNext.Load() }

// LeaderFrontier returns the leader durability frontier most recently
// heard (0 before the first hello).
func (f *Follower) LeaderFrontier() uint64 { return f.leaderFrontier.Load() }

// LagAges returns how many ages the apply frontier trails the last
// heard leader frontier.
func (f *Follower) LagAges() uint64 {
	lf, ap := f.leaderFrontier.Load(), f.applyNext.Load()
	if lf <= ap {
		return 0
	}
	return lf - ap
}

// LagBytes returns the byte-space replication lag. ok is false until
// the follower has been caught up at least once (the byte counters of
// the two logs differ by a constant history offset that can only be
// measured at a shared frontier).
func (f *Follower) LagBytes() (uint64, bool) {
	if !f.calibrated.Load() {
		return 0, false
	}
	lag := int64(f.leaderBytes.Load()) - int64(f.localBytes.Load()) - f.byteSkew.Load()
	if lag < 0 {
		lag = 0
	}
	return uint64(lag), true
}

// Reconnects returns how many times the stream was (re)established.
func (f *Follower) Reconnects() uint64 { return f.reconnects.Load() }

// Applied returns how many records the follower has applied and their
// framed bytes.
func (f *Follower) Applied() (records, bytes uint64) {
	return f.applied.Load(), f.appliedB.Load()
}

// Promoted reports whether Promote has completed.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// Gate returns the write gate for the follower's serve.Server: it
// refuses submissions with a NotLeaderError naming the current leader
// until promotion, then admits them.
func (f *Follower) Gate() func() error {
	return func() error {
		if f.promoted.Load() {
			return nil
		}
		return &serve.NotLeaderError{Leader: f.cfg.Leader}
	}
}

// Promote turns the follower into a leader: the stream stops, the
// pipeline drains (every applied record commits and becomes locally
// durable), and the write gate opens. The pipeline and writer carry
// straight on — promotion moves the append frontier authority, not
// the data. After a crash-and-restart the same guarantee comes from
// StartFollower's wal.Recover: the torn tail is truncated exactly as
// leader crash recovery would, so a promoted follower never claims an
// age its disk cannot prove.
func (f *Follower) Promote() error {
	if f.promoted.Load() {
		return nil
	}
	f.stopLoop()
	if err := f.rt.Drain(); err != nil {
		return fmt.Errorf("repl: promote drain: %w", err)
	}
	f.promoted.Store(true)
	return nil
}

// stopLoop ends the apply loop and waits it out; safe to call from
// Promote and Close in any order.
func (f *Follower) stopLoop() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.connMu.Lock()
	if f.cancel != nil {
		f.cancel() // unblocks a read parked on the stream
	}
	f.connMu.Unlock()
	<-f.loopDone
}

// Close stops the apply loop without promoting. The engine and writer
// stay with their owner.
func (f *Follower) Close() error {
	f.stopLoop()
	return f.Err()
}
