package stm_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/orderedstm/ostm/stm"
)

// gatePipeline builds a pipeline whose commit frontier is parked on a
// gate: the first submission's body blocks until the gate closes, so
// later submissions pile up against Capacity deterministically.
func gatePipeline(t *testing.T, workers int) (p *stm.Pipeline, gate chan struct{}) {
	t.Helper()
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OUL, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	gate = make(chan struct{})
	if _, err := p.Submit(func(stm.Tx, int) { <-gate }); err != nil {
		t.Fatal(err)
	}
	return p, gate
}

// TestSubmitCtxCancelDuringBackpressure: with the commit frontier
// parked, fill the pipeline to Capacity and cancel a SubmitCtx that
// is blocked in the backpressure wait. The submission must be
// withdrawn (ErrCanceled, no age consumed) and the stream must keep
// working after the gate opens.
func TestSubmitCtxCancelDuringBackpressure(t *testing.T) {
	p, gate := gatePipeline(t, 2)
	capacity := p.Config().Capacity
	var tks []*stm.Ticket
	for p.InFlight() < capacity {
		tk, err := p.Submit(func(stm.Tx, int) {})
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	submitted := p.Submitted()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.SubmitCtx(ctx, func(stm.Tx, int) {})
		done <- err
	}()
	// The submit must be parked (capacity full, frontier gated), not
	// completing; give it a moment to park, then cancel.
	select {
	case err := <-done:
		t.Fatalf("SubmitCtx returned %v while the pipeline was full", err)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, stm.ErrCanceled) {
			t.Fatalf("canceled SubmitCtx returned %v, want ErrCanceled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancellation error %v must also match context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled SubmitCtx did not return")
	}
	if got := p.Submitted(); got != submitted {
		t.Fatalf("withdrawn submission consumed an age: %d -> %d", submitted, got)
	}

	// The stream keeps running: open the gate, everything drains, and
	// new submissions (ctx already canceled ⇒ refused; fresh ctx ⇒
	// accepted) behave.
	close(gate)
	if _, err := p.SubmitCtx(ctx, func(stm.Tx, int) {}); !errors.Is(err, stm.ErrCanceled) {
		t.Fatalf("pre-canceled ctx must refuse submission, got %v", err)
	}
	tk, err := p.SubmitCtx(context.Background(), func(stm.Tx, int) {})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range append(tks, tk) {
		if err := w.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWaitCtxCancelAfterAgeAssignment: canceling a wait on an
// accepted submission abandons only the wait — the ticket still
// resolves with the real commit outcome and the latched typed value.
func TestWaitCtxCancelAfterAgeAssignment(t *testing.T) {
	p, gate := gatePipeline(t, 2)
	tk, err := stm.SubmitFunc(p, func(tx stm.Tx, age int) uint64 { return uint64(age) * 2 })
	if err != nil {
		t.Fatal(err)
	}
	age := tk.Age()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tk.WaitCtx(ctx); !errors.Is(err, stm.ErrCanceled) {
		t.Fatalf("WaitCtx on gated commit returned %v, want ErrCanceled", err)
	}
	if _, err := tk.ValueCtx(ctx); !errors.Is(err, stm.ErrCanceled) {
		t.Fatalf("ValueCtx must propagate the cancellation")
	}
	if _, resolved := tk.Err(); resolved {
		t.Fatal("cancellation must not resolve the ticket")
	}

	close(gate) // frontier advances; the age commits for real
	if err := tk.Wait(); err != nil {
		t.Fatalf("ticket lost its age after a canceled wait: %v", err)
	}
	if tk.Age() != age {
		t.Fatalf("age changed: %d -> %d", age, tk.Age())
	}
	v, err := tk.Value()
	if err != nil || v != uint64(age)*2 {
		t.Fatalf("Value() = %d, %v; want %d", v, err, age*2)
	}
	// A canceled-context wait on an already-resolved ticket returns the
	// outcome, not the cancellation.
	if err := tk.WaitCtx(ctx); err != nil {
		t.Fatalf("WaitCtx after resolution returned %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitCtxRace hammers SubmitCtx from many goroutines with
// randomly timed cancellations while the frontier stalls and resumes;
// run under -race this checks the cancellation paths are data-race
// free and every accepted ticket resolves exactly once. The final
// counter must equal the number of accepted submissions — a withdrawn
// submission must have no effect.
func TestSubmitCtxRace(t *testing.T) {
	counter := stm.NewTVar[uint64](0)
	p, gate := gatePipeline(t, 4)
	const producers = 8
	rounds := 300
	if testing.Short() {
		rounds = 60
	}
	var accepted sync.WaitGroup
	var acceptedN, canceledN int64
	var mu sync.Mutex
	for g := 0; g < producers; g++ {
		accepted.Add(1)
		go func(g int) {
			defer accepted.Done()
			for i := 0; i < rounds; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*50*time.Microsecond)
				tk, err := stm.SubmitFuncCtx(ctx, p, func(tx stm.Tx, _ int) uint64 {
					nv := stm.ReadT(tx, counter) + 1
					stm.WriteT(tx, counter, nv)
					return nv
				})
				if err != nil {
					cancel()
					if !errors.Is(err, stm.ErrCanceled) {
						t.Errorf("producer %d: %v", g, err)
						return
					}
					mu.Lock()
					canceledN++
					mu.Unlock()
					continue
				}
				mu.Lock()
				acceptedN++
				mu.Unlock()
				// Wait with an already-expired context sometimes, then for
				// real: the ticket must survive abandoned waits.
				tk.WaitCtx(ctx)
				cancel()
				if err := tk.Wait(); err != nil {
					t.Errorf("producer %d: accepted ticket failed: %v", g, err)
					return
				}
			}
		}(g)
	}
	// Stall and release the frontier a few times while producers run.
	time.Sleep(2 * time.Millisecond)
	close(gate)
	accepted.Wait()
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := counter.Load(); got != uint64(acceptedN) {
		t.Fatalf("counter %d, accepted %d (canceled %d must have no effect)", got, acceptedN, canceledN)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
