package stm

import (
	"context"
	"fmt"
)

// TypedCodec is the typed durability bridge: it adapts a Req
// marshaler pair and a typed handler into the pipeline's Codec, so a
// WAL-backed pipeline can accept typed requests (SubmitPayloadT),
// latch their typed results (TicketOf[R]), and — because live
// execution and recovery replay both run the handler built from the
// decoded request — re-derive the same typed results when the log is
// replayed after a crash (SubmitEncodedT is the typed replay entry).
//
// The replay-determinism obligation carries over unchanged from
// Codec: unmarshal must be deterministic, and the handler must build
// a Func that is a deterministic function of (age, memory).
type TypedCodec[Req, R any] struct {
	enc     func(Req) ([]byte, error)
	dec     func([]byte) (Req, error)
	handler func(Req) Func[R]
}

// CodecOf builds a TypedCodec from a Req marshaler pair (any wire
// format: hand-rolled framing, encoding/binary, proto marshal
// functions) and the handler that turns a decoded request into its
// value-returning transaction.
func CodecOf[Req, R any](
	encode func(Req) ([]byte, error),
	decode func([]byte) (Req, error),
	handler func(Req) Func[R],
) *TypedCodec[Req, R] {
	if encode == nil || decode == nil || handler == nil {
		panic("stm: CodecOf requires non-nil encode, decode and handler")
	}
	return &TypedCodec[Req, R]{enc: encode, dec: decode, handler: handler}
}

// Encode implements Codec: the payload must be a Req.
func (c *TypedCodec[Req, R]) Encode(payload any) ([]byte, error) {
	req, ok := payload.(Req)
	if !ok {
		var z Req
		return nil, fmt.Errorf("stm: typed codec expects %T payloads, got %T", z, payload)
	}
	return c.enc(req)
}

// Decode implements Codec, reconstructing the transaction body from
// the wire form. The result value is computed and discarded on this
// untyped path (plain SubmitPayload/SubmitEncoded and the generic
// recovery Replay driver); use SubmitPayloadT/SubmitEncodedT to
// capture it.
func (c *TypedCodec[Req, R]) Decode(data []byte) (Body, error) {
	req, err := c.dec(data)
	if err != nil {
		return nil, err
	}
	fn := c.handler(req)
	return func(tx Tx, age int) { fn(tx, age) }, nil
}

// typedCodecOf resolves the pipeline's codec as the matching
// TypedCodec instantiation.
func typedCodecOf[Req, R any](p *Pipeline) (*TypedCodec[Req, R], error) {
	c, ok := p.cfg.Codec.(*TypedCodec[Req, R])
	if !ok {
		var zq Req
		var zr R
		return nil, fmt.Errorf("stm: Config.Codec is %T, not the *stm.TypedCodec[%T, %T] this call requires", p.cfg.Codec, zq, zr)
	}
	return c, nil
}

// SubmitPayloadT is the typed durable submission: req is encoded
// through the pipeline's TypedCodec (the encoded form is what the WAL
// stores once the age commits), the handler's Func runs as the
// transaction — live execution and recovery replay share the decoded
// path by construction — and the returned TicketOf latches the typed
// result at commit. The pipeline's Config.Codec must be the matching
// *TypedCodec[Req, R].
func SubmitPayloadT[Req, R any](p *Pipeline, req Req) (*TicketOf[R], error) {
	return SubmitPayloadTCtx[Req, R](nil, p, req)
}

// SubmitPayloadTCtx is SubmitPayloadT with SubmitCtx's cancellable
// backpressure wait (nil ctx never cancels).
func SubmitPayloadTCtx[Req, R any](ctx context.Context, p *Pipeline, req Req) (*TicketOf[R], error) {
	c, err := typedCodecOf[Req, R](p)
	if err != nil {
		return nil, err
	}
	data, err := c.enc(req)
	if err != nil {
		return nil, fmt.Errorf("stm: encode payload: %w", err)
	}
	// Run the handler on the *decoded* round trip, never the caller's
	// original request: the wire form is what the WAL stores, so only
	// the decoded request is guaranteed to be re-derivable at replay —
	// a lossy encoder or canonicalizing decoder would otherwise make
	// live execution and recovery diverge silently.
	dreq, err := c.dec(data)
	if err != nil {
		return nil, fmt.Errorf("stm: decode payload: %w", err)
	}
	t := &TicketOf[R]{Ticket: Ticket{done: make(chan struct{})}, fn: c.handler(dreq)}
	if err := p.submitWith(ctx, &t.Ticket, t.run, data); err != nil {
		return nil, err
	}
	return t, nil
}

// SubmitEncodedT is the typed replay entry point: it submits a
// payload already in its wire form (a surviving WAL record) and
// latches the typed result the re-execution derives — replaying every
// surviving record through SubmitEncodedT of a fresh pipeline yields
// result-for-result the same TicketOf values the original run
// acknowledged, because both runs execute the same decoded handler at
// the same ages over the same predefined order. SubmitEncoded's
// buffer-retention contract applies unchanged.
func SubmitEncodedT[Req, R any](p *Pipeline, data []byte) (*TicketOf[R], error) {
	c, err := typedCodecOf[Req, R](p)
	if err != nil {
		return nil, err
	}
	req, err := c.dec(data)
	if err != nil {
		return nil, fmt.Errorf("stm: decode payload: %w", err)
	}
	t := &TicketOf[R]{Ticket: Ticket{done: make(chan struct{})}, fn: c.handler(req)}
	if err := p.submitWith(nil, &t.Ticket, t.run, data); err != nil {
		return nil, err
	}
	return t, nil
}
