package stm_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/wal"
)

// transfer is the durable test workload's payload: move amt (derived
// from the age) from one account to another. Bodies are deterministic
// functions of (age, memory), so the WAL's input-replay property
// holds.
type transfer struct{ from, to uint32 }

// tfCodec encodes transfers and decodes them into bodies over a fixed
// account slice — the application half of the durability contract.
type tfCodec struct{ accounts []stm.Var }

func (c tfCodec) Encode(payload any) ([]byte, error) {
	t, ok := payload.(transfer)
	if !ok {
		return nil, fmt.Errorf("unexpected payload %T", payload)
	}
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:4], t.from)
	binary.LittleEndian.PutUint32(b[4:8], t.to)
	return b[:], nil
}

func (c tfCodec) Decode(data []byte) (stm.Body, error) {
	if len(data) != 8 {
		return nil, fmt.Errorf("bad transfer payload length %d", len(data))
	}
	from := binary.LittleEndian.Uint32(data[0:4])
	to := binary.LittleEndian.Uint32(data[4:8])
	if int(from) >= len(c.accounts) || int(to) >= len(c.accounts) {
		return nil, fmt.Errorf("transfer %d→%d out of range", from, to)
	}
	accounts := c.accounts
	return func(tx stm.Tx, age int) {
		amt := uint64(age%5) + 1
		bf := tx.Read(&accounts[from])
		if bf >= amt && from != to {
			tx.Write(&accounts[from], bf-amt)
			tx.Write(&accounts[to], tx.Read(&accounts[to])+amt)
		}
	}, nil
}

// applyTransfers is the model oracle: fold the decoded semantics over
// plain uint64s, sequentially, in age order.
func applyTransfers(balances []uint64, recs []wal.Record, firstAge uint64) error {
	for i, rec := range recs {
		if len(rec.Payload) != 8 {
			return fmt.Errorf("record %d: bad payload", i)
		}
		from := binary.LittleEndian.Uint32(rec.Payload[0:4])
		to := binary.LittleEndian.Uint32(rec.Payload[4:8])
		age := firstAge + uint64(i)
		if rec.Age != age {
			return fmt.Errorf("record %d has age %d, want %d", i, rec.Age, age)
		}
		amt := uint64(age%5) + 1
		if balances[from] >= amt && from != to {
			balances[from] -= amt
			balances[to] += amt
		}
	}
	return nil
}

func newAccounts(n int, balance uint64) []stm.Var {
	vs := stm.NewVars(n)
	for i := range vs {
		vs[i].Store(balance)
	}
	return vs
}

func equalState(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const durableAccounts = 64

func transferFor(age uint64) transfer {
	return transfer{
		from: uint32((age * 7) % durableAccounts),
		to:   uint32((age*13 + 1) % durableAccounts),
	}
}

// runDurableStream drives n transfers through a WAL-backed pipeline
// from several concurrent producers and returns the final state.
func runDurableStream(t *testing.T, alg stm.Algorithm, dir string, n int, waitDurable bool) []uint64 {
	t.Helper()
	accounts := newAccounts(durableAccounts, 1000)
	w, err := wal.Create(dir, 0, wal.Options{SyncEveryN: 8, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	p, err := stm.NewPipeline(stm.Config{
		Algorithm:   alg,
		Workers:     4,
		WAL:         w,
		Codec:       tfCodec{accounts: accounts},
		WaitDurable: waitDurable,
	})
	if err != nil {
		t.Fatal(err)
	}
	const producers = 4
	var wg sync.WaitGroup
	for c := 0; c < producers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < n; i += producers {
				tk, err := p.SubmitPayload(transferFor(uint64(i)))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if err := tk.Wait(); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Durable(), uint64(n); got != want {
		t.Fatalf("durable frontier after Close = %d, want %d", got, want)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return snapshot(accounts)
}

// recoverState replays a recovered log through a fresh pipeline of
// the given algorithm and returns the reconstructed state.
func recoverState(t *testing.T, alg stm.Algorithm, rec *wal.Recovery) []uint64 {
	t.Helper()
	accounts := newAccounts(durableAccounts, 1000)
	p, err := stm.NewPipeline(stm.Config{
		Algorithm: alg,
		Workers:   4,
		Codec:     tfCodec{accounts: accounts},
		FirstAge:  rec.First(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Replay(func(age uint64, payload []byte) error {
		_, err := p.SubmitEncoded(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return snapshot(accounts)
}

// TestDurableDeterminismEveryOrderedEngine is the WaitDurable
// determinism suite: for every order-enforcing algorithm, a durable
// stream's final state, the recovered log replayed through the same
// engine, replayed through Sequential, and the plain model fold all
// agree — recovery ≡ replay ≡ sequential execution.
func TestDurableDeterminismEveryOrderedEngine(t *testing.T) {
	algs := append([]stm.Algorithm{stm.Sequential}, stm.OrderedAlgorithms()...)
	for _, alg := range algs {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			const n = 600
			dir := t.TempDir()
			live := runDurableStream(t, alg, dir, n, true)

			rec, err := wal.Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Count() != n {
				t.Fatalf("recovered %d records, want %d", rec.Count(), n)
			}
			model := make([]uint64, durableAccounts)
			for i := range model {
				model[i] = 1000
			}
			if err := applyTransfers(model, rec.Records(), 0); err != nil {
				t.Fatal(err)
			}
			if !equalState(live, model) {
				t.Fatal("live state diverges from sequential model of the log")
			}
			if got := recoverState(t, alg, rec); !equalState(got, model) {
				t.Fatalf("%v replay diverges from sequential model", alg)
			}
			if got := recoverState(t, stm.Sequential, rec); !equalState(got, model) {
				t.Fatal("Sequential replay diverges from sequential model")
			}
		})
	}
}

// TestCrashPrefixEveryOrderedEngine snapshots the WAL directory while
// the stream is still running — the moral equivalent of a crash at an
// arbitrary instant, torn tail included — and asserts the recovered
// prefix replays to exactly the sequential-execution state of that
// prefix, for every ordered engine.
func TestCrashPrefixEveryOrderedEngine(t *testing.T) {
	for _, alg := range stm.OrderedAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			const n = 1500
			dir := t.TempDir()
			accounts := newAccounts(durableAccounts, 1000)
			w, err := wal.Create(dir, 0, wal.Options{SyncEveryN: 4, SegmentBytes: 4096})
			if err != nil {
				t.Fatal(err)
			}
			p, err := stm.NewPipeline(stm.Config{
				Algorithm: alg,
				Workers:   4,
				WAL:       w,
				Codec:     tfCodec{accounts: accounts},
			})
			if err != nil {
				t.Fatal(err)
			}
			snapDir := t.TempDir()
			var once sync.Once
			for i := 0; i < n; i++ {
				tk, err := p.SubmitPayload(transferFor(uint64(i)))
				if err != nil {
					t.Fatal(err)
				}
				if i == n/2 {
					if err := tk.Wait(); err != nil {
						t.Fatal(err)
					}
					// "Crash": copy the live log mid-stream, while the
					// writer keeps appending into it concurrently.
					once.Do(func() { copyDirLive(t, dir, snapDir) })
				}
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			rec, err := wal.Recover(snapDir)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Count() == 0 {
				t.Fatal("snapshot recovered no records (crash point too early?)")
			}
			if rec.Count() > n {
				t.Fatalf("recovered %d records from a %d-transaction run", rec.Count(), n)
			}
			model := make([]uint64, durableAccounts)
			for i := range model {
				model[i] = 1000
			}
			if err := applyTransfers(model, rec.Records(), 0); err != nil {
				t.Fatal(err)
			}
			if got := recoverState(t, alg, rec); !equalState(got, model) {
				t.Fatalf("%v crash replay diverges from sequential prefix state", alg)
			}
		})
	}
}

// copyDirLive clones a directory that may be concurrently appended to
// (torn tails in the copy are expected and welcome).
func copyDirLive(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveredPipelineContinues exercises the full restart loop:
// run, close, recover, replay through a WAL-attached pipeline
// (idempotent re-appends), submit new work, recover again — the log
// must hold the uninterrupted sequence.
func TestRecoveredPipelineContinues(t *testing.T) {
	const n1, n2 = 200, 150
	dir := t.TempDir()
	first := runDurableStream(t, stm.OUL, dir, n1, false)

	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := rec.Writer(wal.Options{SyncEveryN: 8, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	accounts := newAccounts(durableAccounts, 1000)
	p, err := stm.NewPipeline(stm.Config{
		Algorithm:   stm.OUL,
		Workers:     4,
		WAL:         w,
		Codec:       tfCodec{accounts: accounts},
		WaitDurable: true,
		FirstAge:    rec.First(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Replay(func(age uint64, payload []byte) error {
		_, err := p.SubmitEncoded(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if !equalState(snapshot(accounts), first) {
		t.Fatal("replayed state diverges from pre-crash state")
	}
	for i := n1; i < n1+n2; i++ {
		tk, err := p.SubmitPayload(transferFor(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Count() != n1+n2 {
		t.Fatalf("final log holds %d records, want %d", rec2.Count(), n1+n2)
	}
	if got := recoverState(t, stm.Sequential, rec2); !equalState(got, snapshot(accounts)) {
		t.Fatal("final replay diverges from live state")
	}
}

// TestDurablePipelineRejectsOpaqueBodies: a WAL-backed pipeline must
// not accept submissions it cannot replay.
func TestDurablePipelineRejectsOpaqueBodies(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Create(dir, 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	accounts := newAccounts(4, 0)
	p, err := stm.NewPipeline(stm.Config{
		Algorithm: stm.OUL,
		WAL:       w,
		Codec:     tfCodec{accounts: accounts},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Submit(func(stm.Tx, int) {}); !errors.Is(err, stm.ErrPayloadRequired) {
		t.Fatalf("Submit err = %v, want ErrPayloadRequired", err)
	}
	if _, err := p.SubmitBatch([]stm.Body{func(stm.Tx, int) {}}); !errors.Is(err, stm.ErrPayloadRequired) {
		t.Fatalf("SubmitBatch err = %v, want ErrPayloadRequired", err)
	}
}

// TestWaitDurableDefersUntilSync: under sync policy "none" a
// committed transaction's ticket stays unresolved until an explicit
// Sync lands its age on stable storage.
func TestWaitDurableDefersUntilSync(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Create(dir, 0, wal.Options{}) // policy none
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	accounts := newAccounts(durableAccounts, 1000)
	p, err := stm.NewPipeline(stm.Config{
		Algorithm:   stm.OUL,
		Workers:     2,
		WAL:         w,
		Codec:       tfCodec{accounts: accounts},
		WaitDurable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := p.SubmitPayload(transferFor(0))
	if err != nil {
		t.Fatal(err)
	}
	// The transaction commits in memory...
	deadline := time.Now().Add(5 * time.Second)
	for p.Committed() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("transaction never committed")
		}
		time.Sleep(time.Millisecond)
	}
	// ...but its ticket must stay deferred until durability.
	if err, resolved := tk.Err(); resolved {
		t.Fatalf("ticket resolved (%v) before its age was durable", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.Durable() == 0 {
		t.Fatal("durability frontier did not advance")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// failingLog is a DurableLog whose Appends start failing on demand.
type failingLog struct {
	mu     sync.Mutex
	broken bool
	next   uint64
	fn     func(next uint64, err error)
}

func (l *failingLog) Append(age uint64, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken {
		return errors.New("disk on fire")
	}
	l.next = age + 1
	return nil
}
func (l *failingLog) Notify(fn func(next uint64, err error)) { l.fn = fn }
func (l *failingLog) Sync() error                            { return nil }
func (l *failingLog) Durable() uint64                        { return 0 }
func (l *failingLog) breakNow()                              { l.mu.Lock(); l.broken = true; l.mu.Unlock() }

// TestLogFailureCommitStillAcknowledged: without WaitDurable, a
// ticket acknowledges the in-memory commit — a log failure must not
// turn a committed transaction's resolution into an error (that is
// Close's and WaitDurable's job to report).
func TestLogFailureCommitStillAcknowledged(t *testing.T) {
	log := &failingLog{}
	accounts := newAccounts(durableAccounts, 1000)
	p, err := stm.NewPipeline(stm.Config{
		Algorithm: stm.OUL,
		Workers:   2,
		WAL:       log,
		Codec:     tfCodec{accounts: accounts},
	})
	if err != nil {
		t.Fatal(err)
	}
	log.breakNow()
	tk, err := p.SubmitPayload(transferFor(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatalf("committed ticket resolved with %v, want nil", err)
	}
	var derr *stm.DurabilityError
	if err := p.Close(); !errors.As(err, &derr) {
		t.Fatalf("Close returned %v, want DurabilityError", err)
	}
}

// TestLogFailureSurfacesOnTickets: once the WAL dies, WaitDurable
// tickets resolve with a DurabilityError instead of hanging.
func TestLogFailureSurfacesOnTickets(t *testing.T) {
	log := &failingLog{}
	accounts := newAccounts(durableAccounts, 1000)
	p, err := stm.NewPipeline(stm.Config{
		Algorithm:   stm.OUL,
		Workers:     2,
		WAL:         log,
		Codec:       tfCodec{accounts: accounts},
		WaitDurable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	log.breakNow()
	tk, err := p.SubmitPayload(transferFor(0))
	if err != nil {
		t.Fatal(err)
	}
	var derr *stm.DurabilityError
	if err := tk.Wait(); !errors.As(err, &derr) {
		t.Fatalf("ticket resolved with %v, want DurabilityError", err)
	}
	if err := p.Close(); err == nil {
		t.Fatal("Close reported success after log failure")
	}
}

// TestSubmitPayloadBatch: the batched durable producer path yields
// the same log and state as one-at-a-time submission.
func TestSubmitPayloadBatch(t *testing.T) {
	const n = 96
	dir := t.TempDir()
	accounts := newAccounts(durableAccounts, 1000)
	w, err := wal.Create(dir, 0, wal.Options{SyncEveryN: 8, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	p, err := stm.NewPipeline(stm.Config{
		Algorithm:   stm.OUL,
		Workers:     4,
		WAL:         w,
		Codec:       tfCodec{accounts: accounts},
		WaitDurable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]any, 0, 16)
	for i := 0; i < n; i += 16 {
		batch = batch[:0]
		for j := i; j < i+16; j++ {
			batch = append(batch, transferFor(uint64(j)))
		}
		tks, err := p.SubmitPayloadBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for _, tk := range tks {
			if err := tk.Wait(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() != n {
		t.Fatalf("log holds %d records, want %d", rec.Count(), n)
	}
	if got := recoverState(t, stm.Sequential, rec); !equalState(got, snapshot(accounts)) {
		t.Fatal("replay diverges from live state")
	}
}
