package stm

import (
	"errors"
	"fmt"
)

// Codec turns durable transaction payloads into replayable bodies. It
// is the bridge between the pipeline and its write-ahead log: the
// predefined commit order plus deterministic bodies mean the log never
// stores memory — it stores the *inputs*, and replaying the encoded
// inputs in age order through any order-enforcing engine reproduces
// the state bit for bit.
//
// Encode serializes an application-level payload (a command, a
// transfer request, a consensus entry) to its wire form. Decode
// reconstructs the transaction body from that wire form. A durable
// pipeline runs the *decoded* body even for live submissions, so the
// code path that executed originally and the one recovery replays are
// the same by construction — an encode bug cannot desynchronize them
// silently.
//
// Decode must be deterministic: the same bytes must always yield a
// body with the same effect at the same age. Bodies themselves must
// already be deterministic functions of (age, memory) — the executor
// re-runs them after aborts — so this adds no new obligation, only
// extends it across restarts.
type Codec interface {
	// Encode serializes payload into its durable wire form.
	Encode(payload any) ([]byte, error)
	// Decode reconstructs the transaction body from the wire form.
	Decode(data []byte) (Body, error)
}

// CodecFunc adapts a pair of functions to the Codec interface.
type CodecFunc struct {
	EncodeFunc func(payload any) ([]byte, error)
	DecodeFunc func(data []byte) (Body, error)
}

// Encode implements Codec.
func (c CodecFunc) Encode(payload any) ([]byte, error) { return c.EncodeFunc(payload) }

// Decode implements Codec.
func (c CodecFunc) Decode(data []byte) (Body, error) { return c.DecodeFunc(data) }

// DurableLog is the pipeline's write-ahead sink, implemented by
// wal.Writer. The pipeline appends the encoded payload of every
// committed age, in age order, as the commit frontier advances;
// the log decides when those appends reach stable storage (group
// commit) and reports progress through the registered observer.
type DurableLog interface {
	// Append hands the log the payload committed at age. Ages arrive
	// contiguously; appending an age the log already holds must be a
	// no-op success (recovery replay idempotence). Append is called on
	// the commit path and must never force records to stable storage
	// (no fsync); buffering in process or writing through to the OS
	// page cache is fine.
	Append(age uint64, payload []byte) error
	// Notify registers the durability observer: fn is called, without
	// log-internal locks held, after each sync with the new frontier
	// (every age below next is durable) and with a non-nil error if
	// the log has failed.
	Notify(fn func(next uint64, err error))
	// Sync forces everything appended so far onto stable storage
	// before returning (and fires the observer).
	Sync() error
	// Durable returns the current durability frontier.
	Durable() uint64
}

// Snapshotter serializes the application's Var space for a
// checkpoint, and restores it at recovery. The pipeline calls
// Snapshot only at a quiescent frontier: every age below the
// checkpoint age has fully committed, no speculative execution at or
// above it has started, so plain Var.Load reads the exact sequential
// state — SnapshotVars/RestoreVars cover the common flat-Var-array
// case. Snapshot must not call back into the pipeline.
//
// The snapshot bytes travel next to the log (wal checkpoint files),
// so like Codec payloads they must be self-contained: Restore on a
// fresh process must rebuild the same state Snapshot saw.
type Snapshotter interface {
	// Snapshot serializes the current Var space. Called at a quiescent
	// frontier; the returned bytes are owned by the caller.
	Snapshot() ([]byte, error)
	// Restore rebuilds the Var space from a snapshot taken by the same
	// application at an earlier frontier.
	Restore(data []byte) error
}

// SnapshotterFuncs adapts a pair of functions to Snapshotter.
type SnapshotterFuncs struct {
	SnapshotFunc func() ([]byte, error)
	RestoreFunc  func(data []byte) error
}

// Snapshot implements Snapshotter.
func (s SnapshotterFuncs) Snapshot() ([]byte, error) { return s.SnapshotFunc() }

// Restore implements Snapshotter.
func (s SnapshotterFuncs) Restore(data []byte) error { return s.RestoreFunc(data) }

// SnapshotVars serializes a flat Var array as little-endian u64
// words — the snapshot format for applications whose whole state is
// one Var slice (benchmarks, the examples, TVar-free tables).
func SnapshotVars(vars []Var) []byte {
	buf := make([]byte, 8*len(vars))
	for i := range vars {
		x := vars[i].Load()
		for b := 0; b < 8; b++ {
			buf[8*i+b] = byte(x >> (8 * b))
		}
	}
	return buf
}

// RestoreVars is SnapshotVars' inverse. It errors if the snapshot's
// word count does not match the Var array (a schema change between
// checkpoint and restart).
func RestoreVars(vars []Var, data []byte) error {
	if len(data) != 8*len(vars) {
		return fmt.Errorf("stm: snapshot holds %d words, state has %d vars", len(data)/8, len(vars))
	}
	for i := range vars {
		var x uint64
		for b := 0; b < 8; b++ {
			x |= uint64(data[8*i+b]) << (8 * b)
		}
		vars[i].Store(x)
	}
	return nil
}

// CheckpointSink is the optional durable-log extension the pipeline's
// automatic checkpointing needs, implemented by wal.Writer. A
// DurableLog that does not implement it simply never checkpoints
// (Config.CheckpointEvery requires it).
type CheckpointSink interface {
	// Checkpoint durably records state as the application snapshot at
	// frontier age and truncates log history the checkpoint makes
	// redundant.
	Checkpoint(age uint64, state []byte) error
}

// ErrPayloadRequired is returned by Submit and SubmitBatch on a
// pipeline configured with a WAL: opaque bodies cannot be replayed
// after a crash, so every durable submission must come in through
// SubmitPayload/SubmitEncoded, which capture the input the log needs.
var ErrPayloadRequired = errors.New("stm: durable pipeline requires SubmitPayload (a body alone cannot be re-created at recovery)")

// DurabilityError wraps a write-ahead log failure. Once the log
// fails, the in-memory pipeline keeps its ordering guarantees but can
// no longer extend the durable prefix; WaitDurable tickets and Close
// report the failure through this type.
type DurabilityError struct {
	Err error
}

// Error implements error.
func (e *DurabilityError) Error() string {
	return fmt.Sprintf("stm: write-ahead log failed: %v", e.Err)
}

// Unwrap exposes the underlying log error.
func (e *DurabilityError) Unwrap() error { return e.Err }
