package stm_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

// streamCmd is one heterogeneous transaction of a randomized
// bank-transfer stream: unlike the batch tests' single shared body,
// every age gets its own closure with its own captured parameters,
// exercising the pipeline's per-transaction bodies.
type streamCmd struct {
	kind byte // 't' transfer, 'd' deposit, 'a' audit
	from int
	to   int
	amt  uint64
}

func genStreamCmds(seed uint64, n, accounts int) []streamCmd {
	r := rng.New(seed)
	cmds := make([]streamCmd, n)
	for i := range cmds {
		switch r.Intn(10) {
		case 0:
			cmds[i] = streamCmd{kind: 'a'}
		case 1, 2:
			cmds[i] = streamCmd{kind: 'd', to: r.Intn(accounts), amt: uint64(r.Intn(100))}
		default:
			cmds[i] = streamCmd{kind: 't', from: r.Intn(accounts), to: r.Intn(accounts),
				amt: uint64(r.Intn(50))}
		}
	}
	return cmds
}

// streamBody builds the age's closure. Each body records its result
// (the value the committed execution observed) into its own slot of
// results, so per-ticket outputs can be compared across algorithms.
func streamBody(cmd streamCmd, accounts []stm.Var, results []uint64, age int) stm.Body {
	return func(tx stm.Tx, _ int) {
		switch cmd.kind {
		case 'd':
			nv := tx.Read(&accounts[cmd.to]) + cmd.amt
			tx.Write(&accounts[cmd.to], nv)
			results[age] = nv
		case 'a':
			var total uint64
			for i := range accounts {
				total += tx.Read(&accounts[i])
			}
			results[age] = total
		default:
			b := tx.Read(&accounts[cmd.from])
			if b >= cmd.amt {
				tx.Write(&accounts[cmd.from], b-cmd.amt)
				tx.Write(&accounts[cmd.to], tx.Read(&accounts[cmd.to])+cmd.amt)
				results[age] = b - cmd.amt
			} else {
				results[age] = b
			}
		}
	}
}

const (
	streamAccounts = 32
	streamInitial  = 500
)

func initAccounts(vars []stm.Var) {
	for i := range vars {
		vars[i].Store(streamInitial)
	}
}

// runStreamSequential produces the oracle: the same bodies executed
// strictly in age order.
func runStreamSequential(t *testing.T, cmds []streamCmd) ([]uint64, []uint64) {
	t.Helper()
	accounts := stm.NewVars(streamAccounts)
	initAccounts(accounts)
	results := make([]uint64, len(cmds))
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	bodies := make([]stm.Body, len(cmds))
	for i, c := range cmds {
		bodies[i] = streamBody(c, accounts, results, i)
	}
	if _, err := ex.Run(len(cmds), func(tx stm.Tx, age int) { bodies[age](tx, age) }); err != nil {
		t.Fatal(err)
	}
	return snapshot(accounts), results
}

// TestPipelineStreamingEquivalence is the streaming oracle required by
// the roadmap: for every ordered algorithm, submitting a randomized
// heterogeneous bank-transfer stream through a Pipeline with 8 workers
// yields final memory and per-ticket results byte-identical to the
// sequential in-age-order execution of the same bodies.
func TestPipelineStreamingEquivalence(t *testing.T) {
	n := 10000
	if testing.Short() {
		n = 1500
	}
	cmds := genStreamCmds(0xC0FFEE, n, streamAccounts)
	wantState, wantResults := runStreamSequential(t, cmds)

	algos := append(stm.OrderedAlgorithms(), stm.Sequential)
	for _, alg := range algos {
		t.Run(alg.String(), func(t *testing.T) {
			accounts := stm.NewVars(streamAccounts)
			initAccounts(accounts)
			results := make([]uint64, n)
			p, err := stm.NewPipeline(stm.Config{Algorithm: alg, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			tickets := make([]*stm.Ticket, n)
			for i, c := range cmds {
				tk, err := p.Submit(streamBody(c, accounts, results, i))
				if err != nil {
					t.Fatalf("Submit age %d: %v", i, err)
				}
				if tk.Age() != uint64(i) {
					t.Fatalf("ticket age %d, want %d", tk.Age(), i)
				}
				tickets[i] = tk
			}
			if err := p.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			for i, tk := range tickets {
				if err := tk.Wait(); err != nil {
					t.Fatalf("ticket %d: %v", i, err)
				}
			}
			if got := p.Committed(); got != uint64(n) {
				t.Fatalf("committed %d of %d", got, n)
			}
			gotState := snapshot(accounts)
			for i := range wantState {
				if gotState[i] != wantState[i] {
					t.Fatalf("account %d diverged: got %d want %d (stats %v)",
						i, gotState[i], wantState[i], p.Stats())
				}
			}
			for i := range wantResults {
				if results[i] != wantResults[i] {
					t.Fatalf("per-ticket result %d diverged: got %d want %d",
						i, results[i], wantResults[i])
				}
			}
		})
	}
}

// TestPipelineFaultSemantics: a deterministic panic stops the stream;
// the faulting ticket resolves with the *Fault, later tickets with
// *Stopped, and Submit/Close report the fault.
func TestPipelineFaultSemantics(t *testing.T) {
	for _, alg := range []stm.Algorithm{stm.Sequential, stm.OUL, stm.OWB, stm.OrderedTL2} {
		t.Run(alg.String(), func(t *testing.T) {
			p, err := stm.NewPipeline(stm.Config{Algorithm: alg, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			v := stm.NewVar(0)
			var tickets []*stm.Ticket
			for i := 0; i < 100; i++ {
				i := i
				tk, err := p.Submit(func(tx stm.Tx, age int) {
					if i == 37 {
						panic("boom")
					}
					tx.Write(v, tx.Read(v)+1)
				})
				if err != nil {
					break // pipeline may stop while we are still submitting
				}
				tickets = append(tickets, tk)
			}
			err = p.Close()
			var f *stm.Fault
			if !errors.As(err, &f) || f.Age != 37 || f.Value != "boom" {
				t.Fatalf("Close error = %v, want fault at 37", err)
			}
			werr := tickets[37].Wait()
			if !errors.As(werr, &f) || f.Age != 37 {
				t.Fatalf("ticket 37 resolved with %v", werr)
			}
			sawStopped := false
			for i, tk := range tickets {
				if i == 37 {
					continue
				}
				werr := tk.Wait() // must not hang
				var st *stm.Stopped
				if errors.As(werr, &st) {
					sawStopped = true
					if st.Fault.Age != 37 {
						t.Fatalf("stopped ticket %d carries fault age %d", i, st.Fault.Age)
					}
				}
			}
			if len(tickets) > 38 && !sawStopped {
				t.Fatal("no ticket resolved with *Stopped despite submissions past the fault")
			}
			if _, err := p.Submit(func(tx stm.Tx, age int) {}); err == nil {
				t.Fatal("Submit after fault succeeded")
			}
		})
	}
}

// TestPipelineCloseAndDrain covers the lifecycle: Drain keeps the
// pipeline open, Close drains and rejects further submissions, and
// both are safe to repeat.
func TestPipelineCloseAndDrain(t *testing.T) {
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OUL, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	v := stm.NewVar(0)
	add := func(tx stm.Tx, age int) { tx.Write(v, tx.Read(v)+1) }
	for i := 0; i < 200; i++ {
		if _, err := p.Submit(add); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := v.Load(); got != 200 {
		t.Fatalf("after drain v=%d, want 200", got)
	}
	// The pipeline must remain open for more work after a drain.
	for i := 0; i < 100; i++ {
		if _, err := p.Submit(add); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := v.Load(); got != 300 {
		t.Fatalf("after close v=%d, want 300", got)
	}
	if _, err := p.Submit(add); !errors.Is(err, stm.ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := p.Drain(); err != nil {
		t.Fatalf("Drain after Close: %v", err)
	}
}

// TestPipelineBackpressure: in-flight submissions never exceed the
// configured capacity, and a capacity-throttled stream still commits
// everything.
func TestPipelineBackpressure(t *testing.T) {
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OWB, Workers: 2, Window: 4, Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	capacity := p.Config().Capacity
	v := stm.NewVar(0)
	for i := 0; i < 2000; i++ {
		if _, err := p.Submit(func(tx stm.Tx, age int) { tx.Write(v, tx.Read(v)+1) }); err != nil {
			t.Fatal(err)
		}
		if in := p.InFlight(); in > capacity {
			t.Fatalf("in-flight %d exceeds capacity %d", in, capacity)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := v.Load(); got != 2000 {
		t.Fatalf("v=%d, want 2000", got)
	}
}

// TestPipelineEpochRecycling: a stream long enough to cross several
// epoch boundaries still reports exact whole-stream stats, and the
// janitor actually rotated.
func TestPipelineEpochRecycling(t *testing.T) {
	const n = 6000
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OULSteal, Workers: 4, EpochAges: 512})
	if err != nil {
		t.Fatal(err)
	}
	v := stm.NewVar(0)
	for i := 0; i < n; i++ {
		if _, err := p.Submit(func(tx stm.Tx, age int) { tx.Write(v, tx.Read(v)+1) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := v.Load(); got != n {
		t.Fatalf("v=%d, want %d", got, n)
	}
	if sv := p.Stats(); sv.Commits != n {
		t.Fatalf("whole-stream commits %d, want %d (epochs=%d)", sv.Commits, n, p.Epochs())
	}
	if p.Epochs() == 0 {
		t.Fatal("no epoch rotated despite EpochAges=512 and 6000 commits")
	}
}

// TestPipelineFirstAge: ages are assigned from FirstAge upward (a
// replica resuming at a known consensus slot) for both cooperative
// and blocked engines.
func TestPipelineFirstAge(t *testing.T) {
	const base = uint64(1_000_000)
	for _, alg := range []stm.Algorithm{stm.OUL, stm.OrderedNOrec, stm.STMLite} {
		t.Run(alg.String(), func(t *testing.T) {
			p, err := stm.NewPipeline(stm.Config{Algorithm: alg, Workers: 4, FirstAge: base})
			if err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			seen := make(map[uint64]bool)
			for i := 0; i < 300; i++ {
				tk, err := p.Submit(func(tx stm.Tx, age int) {
					mu.Lock()
					seen[tx.Age()] = true
					mu.Unlock()
				})
				if err != nil {
					t.Fatal(err)
				}
				if want := base + uint64(i); tk.Age() != want {
					t.Fatalf("ticket age %d, want %d", tk.Age(), want)
				}
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < 300; i++ {
				if !seen[base+i] {
					t.Fatalf("age %d never executed", base+i)
				}
			}
		})
	}
}

// TestPipelineEveryAlgorithm smoke-tests the full algorithm matrix
// through the streaming front-end, including the unordered engines
// (which provide plain serializability: per-age slots and a conserved
// total are still exact).
func TestPipelineEveryAlgorithm(t *testing.T) {
	const n = 400
	for _, alg := range stm.Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			vars := stm.NewVars(16)
			p, err := stm.NewPipeline(stm.Config{Algorithm: alg, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				i := i
				_, err := p.Submit(func(tx stm.Tx, age int) {
					r := rng.New(uint64(i) * 17)
					v := &vars[r.Intn(16)]
					tx.Write(v, tx.Read(v)+1)
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			var total uint64
			for i := range vars {
				total += vars[i].Load()
			}
			if total != n {
				t.Fatalf("total %d, want %d (lost or duplicated increments)", total, n)
			}
		})
	}
}

// TestPipelineVsExecutorResult: the two front-ends over the shared
// core must produce identical memory for the same workload.
func TestPipelineVsExecutorResult(t *testing.T) {
	const n = 500
	vars := stm.NewVars(24)
	body := randomBody(123, vars, 8)

	resetVars(vars)
	mustRun(t, stm.Config{Algorithm: stm.OUL, Workers: 4}, n, body)
	want := snapshot(vars)

	resetVars(vars)
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OUL, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := p.Submit(body); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	got := snapshot(vars)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("var %d: pipeline %#x, executor %#x", i, got[i], want[i])
		}
	}
}

// TestResultRequested: a faulted batch reports the partial commit
// count in N and the asked-for count in Requested.
func TestResultRequested(t *testing.T) {
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.OUL, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run(100, func(tx stm.Tx, age int) {
		if age == 50 {
			panic("halt")
		}
	})
	if err == nil {
		t.Fatal("expected fault")
	}
	if res.Requested != 100 {
		t.Fatalf("Requested=%d, want 100", res.Requested)
	}
	if res.N >= res.Requested {
		t.Fatalf("faulted run reports full N=%d of %d", res.N, res.Requested)
	}
	res, err = ex.Run(80, func(tx stm.Tx, age int) {})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 80 || res.Requested != 80 {
		t.Fatalf("clean run N=%d Requested=%d, want 80/80", res.N, res.Requested)
	}
}

// TestPipelineTicketDone: Done() supports select-based consumption.
func TestPipelineTicketDone(t *testing.T) {
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OWB, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := p.Submit(func(tx stm.Tx, age int) {})
	if err != nil {
		t.Fatal(err)
	}
	<-tk.Done()
	if err := tk.Wait(); err != nil {
		t.Fatalf("resolved ticket Wait: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineValidation covers constructor errors.
func TestPipelineValidation(t *testing.T) {
	if _, err := stm.NewPipeline(stm.Config{Algorithm: stm.Algorithm(99)}); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OUL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(nil); err == nil {
		t.Fatal("expected error for nil body")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// benchmark-style sanity: a pipeline sustains a longer continuous run
// with bounded in-flight work (the closed-loop shape cmd/streambench
// measures at scale).
func TestPipelineSustainedStream(t *testing.T) {
	n := 30000
	if testing.Short() {
		n = 5000
	}
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OUL, Workers: 8, EpochAges: 2048})
	if err != nil {
		t.Fatal(err)
	}
	vars := stm.NewVars(64)
	for i := 0; i < n; i++ {
		i := i
		if _, err := p.Submit(func(tx stm.Tx, age int) {
			v := &vars[i%64]
			tx.Write(v, tx.Read(v)+1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for i := range vars {
		total += vars[i].Load()
	}
	if total != uint64(n) {
		t.Fatalf("total %d, want %d", total, n)
	}
	if fmt.Sprint(p.Stats().Commits) != fmt.Sprint(n) {
		t.Fatalf("stats commits %d, want %d", p.Stats().Commits, n)
	}
}
