package stm_test

import (
	"errors"
	"fmt"
	"testing"

	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

// mustRun builds an executor and runs a batch, failing the test on any
// error.
func mustRun(t *testing.T, cfg stm.Config, n int, body stm.Body) stm.Result {
	t.Helper()
	ex, err := stm.NewExecutor(cfg)
	if err != nil {
		t.Fatalf("NewExecutor(%v): %v", cfg.Algorithm, err)
	}
	res, err := ex.Run(n, body)
	if err != nil {
		t.Fatalf("%v Run: %v", cfg.Algorithm, err)
	}
	return res
}

func snapshot(vars []stm.Var) []uint64 {
	out := make([]uint64, len(vars))
	for i := range vars {
		out[i] = vars[i].Load()
	}
	return out
}

func resetVars(vars []stm.Var) {
	for i := range vars {
		vars[i].Store(0)
	}
}

// randomBody returns a deterministic random transaction program:
// data-dependent reads and writes over vars, so any ordering mistake
// corrupts downstream values.
func randomBody(seed uint64, vars []stm.Var, ops int) stm.Body {
	return func(tx stm.Tx, age int) {
		r := rng.New(seed ^ rng.Mix64(uint64(age)))
		acc := uint64(age) + 1
		for op := 0; op < ops; op++ {
			i := r.Intn(len(vars))
			if r.Intn(100) < 55 {
				acc += tx.Read(&vars[i])
			} else {
				tx.Write(&vars[i], acc^r.Uint64())
			}
		}
	}
}

// TestACOEquivalence is the central oracle: every order-enforcing
// algorithm must leave memory byte-identical to the sequential
// in-age-order execution, for any worker count.
func TestACOEquivalence(t *testing.T) {
	const (
		nVars = 64
		nTx   = 400
		ops   = 12
	)
	for _, seed := range []uint64{1, 42, 0xDEADBEEF} {
		vars := stm.NewVars(nVars)
		body := randomBody(seed, vars, ops)

		resetVars(vars)
		mustRun(t, stm.Config{Algorithm: stm.Sequential}, nTx, body)
		want := snapshot(vars)

		for _, alg := range stm.OrderedAlgorithms() {
			for _, workers := range []int{1, 2, 4, 8} {
				name := fmt.Sprintf("%v/w%d/seed%d", alg, workers, seed)
				t.Run(name, func(t *testing.T) {
					resetVars(vars)
					res := mustRun(t, stm.Config{Algorithm: alg, Workers: workers}, nTx, body)
					if res.N != nTx {
						t.Fatalf("committed %d of %d", res.N, nTx)
					}
					got := snapshot(vars)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("memory diverged at var %d: got %#x want %#x (stats: %v)",
								i, got[i], want[i], res.Stats)
						}
					}
				})
			}
		}
	}
}

// TestACOEquivalenceHighContention stresses the same oracle with few
// variables and long transactions (many forwarding chains and
// cascading aborts).
func TestACOEquivalenceHighContention(t *testing.T) {
	const (
		nVars = 4
		nTx   = 250
		ops   = 10
	)
	vars := stm.NewVars(nVars)
	body := randomBody(7, vars, ops)

	resetVars(vars)
	mustRun(t, stm.Config{Algorithm: stm.Sequential}, nTx, body)
	want := snapshot(vars)

	for _, alg := range stm.OrderedAlgorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			resetVars(vars)
			res := mustRun(t, stm.Config{Algorithm: alg, Workers: 8}, nTx, body)
			got := snapshot(vars)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("memory diverged at var %d: got %#x want %#x (stats: %v)",
						i, got[i], want[i], res.Stats)
				}
			}
		})
	}
}

// TestUnorderedConservation checks the unordered algorithms with a
// commutative workload: increments to random counters must conserve
// the grand total regardless of commit order.
func TestUnorderedConservation(t *testing.T) {
	const (
		nVars = 32
		nTx   = 500
	)
	for _, alg := range []stm.Algorithm{stm.TL2, stm.NOrec, stm.UndoLogVis, stm.UndoLogInvis} {
		t.Run(alg.String(), func(t *testing.T) {
			vars := stm.NewVars(nVars)
			body := func(tx stm.Tx, age int) {
				r := rng.New(uint64(age) * 31)
				for k := 0; k < 4; k++ {
					v := &vars[r.Intn(nVars)]
					tx.Write(v, tx.Read(v)+1)
				}
			}
			res := mustRun(t, stm.Config{Algorithm: alg, Workers: 8}, nTx, body)
			if res.N != nTx {
				t.Fatalf("committed %d of %d", res.N, nTx)
			}
			var total uint64
			for i := range vars {
				total += vars[i].Load()
			}
			if total != uint64(nTx*4) {
				t.Fatalf("total %d, want %d (lost or duplicated increments; stats %v)",
					total, nTx*4, res.Stats)
			}
		})
	}
}

// TestBankInvariant moves money between accounts under every
// algorithm; the total balance must be conserved at the end.
func TestBankInvariant(t *testing.T) {
	const (
		accounts = 16
		initial  = 1000
		nTx      = 600
	)
	for _, alg := range stm.Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			vars := stm.NewVars(accounts)
			for i := range vars {
				vars[i].Store(initial)
			}
			body := func(tx stm.Tx, age int) {
				r := rng.New(uint64(age)*17 + 3)
				from := r.Intn(accounts)
				to := r.Intn(accounts)
				amount := uint64(r.Intn(50))
				b := tx.Read(&vars[from])
				if b >= amount {
					tx.Write(&vars[from], b-amount)
					tx.Write(&vars[to], tx.Read(&vars[to])+amount)
				}
			}
			mustRun(t, stm.Config{Algorithm: alg, Workers: 6}, nTx, body)
			var total uint64
			for i := range vars {
				total += vars[i].Load()
			}
			if total != accounts*initial {
				t.Fatalf("total balance %d, want %d", total, accounts*initial)
			}
		})
	}
}

// TestReadYourOwnWrites checks RYW inside a single transaction for
// every algorithm.
func TestReadYourOwnWrites(t *testing.T) {
	for _, alg := range stm.Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			v := stm.NewVar(5)
			var seen uint64
			mustRun(t, stm.Config{Algorithm: alg, Workers: 2}, 1, func(tx stm.Tx, age int) {
				tx.Write(v, 77)
				seen = tx.Read(v)
			})
			if seen != 77 {
				t.Fatalf("read-your-own-write returned %d, want 77", seen)
			}
			if got := v.Load(); got != 77 {
				t.Fatalf("final value %d, want 77", got)
			}
		})
	}
}

// TestAges checks every age is presented exactly once and matches
// Tx.Age.
func TestAges(t *testing.T) {
	const nTx = 200
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal, stm.OrderedTL2, stm.STMLite} {
		t.Run(alg.String(), func(t *testing.T) {
			vars := stm.NewVars(nTx)
			mustRun(t, stm.Config{Algorithm: alg, Workers: 4}, nTx, func(tx stm.Tx, age int) {
				if tx.Age() != uint64(age) {
					panic("age mismatch")
				}
				tx.Write(&vars[age], tx.Read(&vars[age])+1)
			})
			for i := range vars {
				if vars[i].Load() != 1 {
					t.Fatalf("age %d committed %d times", i, vars[i].Load())
				}
			}
		})
	}
}

// TestFaultPropagation: a deterministic fault (one a sequential run
// would also hit) must surface as a *stm.Fault with the right age.
func TestFaultPropagation(t *testing.T) {
	for _, alg := range []stm.Algorithm{stm.Sequential, stm.OWB, stm.OUL, stm.OrderedTL2} {
		t.Run(alg.String(), func(t *testing.T) {
			ex, err := stm.NewExecutor(stm.Config{Algorithm: alg, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			_, err = ex.Run(100, func(tx stm.Tx, age int) {
				if age == 37 {
					panic("boom")
				}
			})
			var f *stm.Fault
			if !errors.As(err, &f) {
				t.Fatalf("expected *Fault, got %v", err)
			}
			if f.Age != 37 || f.Value != "boom" {
				t.Fatalf("fault = %+v", f)
			}
		})
	}
}

// TestSandboxSpeculativeFault: a fault that only occurs on stale
// speculative state (division by zero guarded in the committed state)
// must be retried, not reported.
func TestSandboxSpeculativeFault(t *testing.T) {
	const nTx = 300
	for _, alg := range stm.OrderedAlgorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			guard := stm.NewVar(1) // never zero in any committed state
			sum := stm.NewVar(0)
			body := func(tx stm.Tx, age int) {
				g := tx.Read(guard)
				// Flicker the guard through 0 inside the transaction;
				// a stale read of the intermediate state by a
				// concurrent transaction triggers division by zero.
				tx.Write(guard, 0)
				tx.Write(guard, g+1)
				tx.Write(sum, tx.Read(sum)+1024/g)
			}
			res := mustRun(t, stm.Config{Algorithm: alg, Workers: 8, RetryUnknownPanics: true}, nTx, body)
			if res.N != nTx {
				t.Fatalf("committed %d of %d", res.N, nTx)
			}
			if got := guard.Load(); got != nTx+1 {
				t.Fatalf("guard = %d, want %d", got, nTx+1)
			}
		})
	}
}

// TestEmptyAndSmallRuns covers the n=0 and n=1 edges.
func TestEmptyAndSmallRuns(t *testing.T) {
	for _, alg := range stm.Algorithms() {
		res := mustRun(t, stm.Config{Algorithm: alg, Workers: 3}, 0, func(tx stm.Tx, age int) {})
		if res.N != 0 {
			t.Fatalf("%v: n=0 committed %d", alg, res.N)
		}
		v := stm.NewVar(0)
		res = mustRun(t, stm.Config{Algorithm: alg, Workers: 3}, 1, func(tx stm.Tx, age int) {
			tx.Write(v, 9)
		})
		if res.N != 1 || v.Load() != 9 {
			t.Fatalf("%v: n=1 res=%+v v=%d", alg, res, v.Load())
		}
	}
}

// TestConfigValidation covers constructor errors.
func TestConfigValidation(t *testing.T) {
	if _, err := stm.NewExecutor(stm.Config{Algorithm: stm.Algorithm(99)}); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.OUL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(-1, func(tx stm.Tx, age int) {}); err == nil {
		t.Fatal("expected error for negative n")
	}
	if _, err := ex.Run(1, nil); err == nil {
		t.Fatal("expected error for nil body")
	}
}

// TestWorkerSweep runs a moderately contended workload across worker
// counts for the three contributed algorithms (smoke test for the
// thread-count dimension used throughout the evaluation).
func TestWorkerSweep(t *testing.T) {
	const nTx = 300
	vars := stm.NewVars(8)
	body := randomBody(99, vars, 6)
	resetVars(vars)
	mustRun(t, stm.Config{Algorithm: stm.Sequential}, nTx, body)
	want := snapshot(vars)
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal} {
		for workers := 1; workers <= 16; workers *= 2 {
			resetVars(vars)
			mustRun(t, stm.Config{Algorithm: alg, Workers: workers}, nTx, body)
			got := snapshot(vars)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v w=%d: var %d got %#x want %#x", alg, workers, i, got[i], want[i])
				}
			}
		}
	}
}
