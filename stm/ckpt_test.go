package stm_test

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/wal"
)

// varsSnapshotter snapshots/restores a flat account array — the test
// workloads' whole state.
func varsSnapshotter(accounts []stm.Var) stm.Snapshotter {
	return stm.SnapshotterFuncs{
		SnapshotFunc: func() ([]byte, error) { return stm.SnapshotVars(accounts), nil },
		RestoreFunc:  func(data []byte) error { return stm.RestoreVars(accounts, data) },
	}
}

// modelTo folds the deterministic transferFor schedule over plain
// integers for ages [0, next) — the ground truth for single-producer
// runs (where age == submission index), valid even when the log's
// prefix has been truncated away by a checkpoint.
func modelTo(next uint64) []uint64 {
	balances := make([]uint64, durableAccounts)
	for i := range balances {
		balances[i] = 1000
	}
	for a := uint64(0); a < next; a++ {
		tr := transferFor(a)
		amt := a%5 + 1
		if balances[tr.from] >= amt && tr.from != tr.to {
			balances[tr.from] -= amt
			balances[tr.to] += amt
		}
	}
	return balances
}

// recoverCheckpointedState rebuilds state from a recovery: restore the
// checkpoint snapshot (if any), then replay only the surviving log
// suffix through a fresh pipeline of the given algorithm.
func recoverCheckpointedState(t *testing.T, alg stm.Algorithm, rec *wal.Recovery) []uint64 {
	t.Helper()
	accounts := newAccounts(durableAccounts, 1000)
	if rec.HasCheckpoint() {
		if err := stm.RestoreVars(accounts, rec.CheckpointState()); err != nil {
			t.Fatal(err)
		}
	}
	p, err := stm.NewPipeline(stm.Config{
		Algorithm: alg,
		Workers:   4,
		Codec:     tfCodec{accounts: accounts},
		FirstAge:  rec.First(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Replay(func(age uint64, payload []byte) error {
		_, err := p.SubmitEncoded(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return snapshot(accounts)
}

// runCheckpointedStream drives n single-producer transfers (age ==
// submission index) through a checkpointing durable pipeline. crashAt,
// if non-zero, snapshots the live log directory into snapDir after
// that many submissions — a crash at an arbitrary instant, possibly
// mid-checkpoint.
func runCheckpointedStream(t *testing.T, alg stm.Algorithm, dir, snapDir string, n, crashAt int, every uint64) (live []uint64, ckpts, ckptAge uint64) {
	t.Helper()
	accounts := newAccounts(durableAccounts, 1000)
	w, err := wal.Create(dir, 0, wal.Options{SyncEveryN: 4, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	p, err := stm.NewPipeline(stm.Config{
		Algorithm:       alg,
		Workers:         4,
		WAL:             w,
		Codec:           tfCodec{accounts: accounts},
		CheckpointEvery: every,
		Snapshotter:     varsSnapshotter(accounts),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tk, err := p.SubmitPayload(transferFor(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if crashAt > 0 && i == crashAt {
			if err := tk.Wait(); err != nil {
				t.Fatal(err)
			}
			copyDirLive(t, dir, snapDir)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	ckpts, ckptAge = p.Checkpoints(), p.CheckpointAge()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return snapshot(accounts), ckpts, ckptAge
}

// TestCheckpointedRecoveryEveryOrderedEngine: a checkpointed run's
// recovery loads the newest snapshot and replays only the log suffix
// above it, and the rebuilt state matches both the live run and the
// sequential model — for every ordered engine.
func TestCheckpointedRecoveryEveryOrderedEngine(t *testing.T) {
	for _, alg := range stm.OrderedAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			const n = 1200
			dir := t.TempDir()
			live, ckpts, ckptAge := runCheckpointedStream(t, alg, dir, "", n, 0, 256)
			if ckpts == 0 || ckptAge == 0 {
				t.Fatalf("run took %d checkpoints (newest at %d), want some", ckpts, ckptAge)
			}
			rec, err := wal.Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !rec.HasCheckpoint() {
				t.Fatal("recovery found no checkpoint")
			}
			if rec.CheckpointAge() != ckptAge {
				t.Fatalf("recovered checkpoint age %d, newest committed was %d", rec.CheckpointAge(), ckptAge)
			}
			if rec.First() != ckptAge {
				t.Fatalf("First() = %d, want the checkpoint age %d", rec.First(), ckptAge)
			}
			if rec.Next() != n {
				t.Fatalf("Next() = %d, want %d", rec.Next(), n)
			}
			if got, want := rec.Count(), int(uint64(n)-ckptAge); got != want {
				t.Fatalf("suffix replay is %d records, want %d (only ages above the checkpoint)", got, want)
			}
			model := modelTo(n)
			if !equalState(live, model) {
				t.Fatal("live state diverges from the sequential model")
			}
			if got := recoverCheckpointedState(t, alg, rec); !equalState(got, model) {
				t.Fatalf("%v checkpointed recovery diverges from the sequential model", alg)
			}
			if got := recoverCheckpointedState(t, stm.Sequential, rec); !equalState(got, model) {
				t.Fatal("Sequential checkpointed recovery diverges from the sequential model")
			}
		})
	}
}

// TestCheckpointCrashEveryOrderedEngine snapshots the log directory
// while appends, checkpoints, and truncations are all in flight — the
// copy can catch a torn tail, a torn checkpoint, or a half-pruned
// directory. Whatever survives must recover to the sequential state of
// exactly the recovered prefix.
func TestCheckpointCrashEveryOrderedEngine(t *testing.T) {
	for _, alg := range stm.OrderedAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			const n = 1500
			dir, snapDir := t.TempDir(), t.TempDir()
			runCheckpointedStream(t, alg, dir, snapDir, n, 2*n/3, 128)
			rec, err := wal.Recover(snapDir)
			if err != nil {
				t.Fatal(err)
			}
			// The copy sees only bytes already flushed to the file, so
			// the frontier may trail the crash point — but never exceed
			// the run, and something must have landed.
			if rec.Next() == 0 || rec.Next() > n {
				t.Fatalf("recovered frontier %d outside (0, %d]", rec.Next(), n)
			}
			if rec.HasCheckpoint() && rec.First() != rec.CheckpointAge() {
				t.Fatalf("First() = %d with a checkpoint at %d", rec.First(), rec.CheckpointAge())
			}
			model := modelTo(rec.Next())
			if got := recoverCheckpointedState(t, alg, rec); !equalState(got, model) {
				t.Fatalf("%v crash recovery diverges from the sequential prefix state", alg)
			}
		})
	}
}

// TestTornManifestRecoveryMatchesState: a torn (or missing) manifest
// must not lose the checkpoint — recovery falls back to scanning the
// checkpoint files themselves, and the rebuilt state is unchanged.
func TestTornManifestRecoveryMatchesState(t *testing.T) {
	const n = 800
	dir := t.TempDir()
	live, _, _ := runCheckpointedStream(t, stm.OUL, dir, "", n, 0, 200)
	for _, tear := range []string{"truncate", "remove"} {
		tear := tear
		t.Run(tear, func(t *testing.T) {
			tornDir := t.TempDir()
			copyDirLive(t, dir, tornDir)
			man := filepath.Join(tornDir, "CHECKPOINT")
			if tear == "truncate" {
				if err := os.Truncate(man, 7); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := os.Remove(man); err != nil {
					t.Fatal(err)
				}
			}
			rec, err := wal.Recover(tornDir)
			if err != nil {
				t.Fatal(err)
			}
			if !rec.HasCheckpoint() {
				t.Fatal("torn manifest lost the checkpoint (scan fallback failed)")
			}
			if rec.Next() != n {
				t.Fatalf("Next() = %d, want %d", rec.Next(), n)
			}
			if got := recoverCheckpointedState(t, stm.OUL, rec); !equalState(got, live) {
				t.Fatal("recovery after manifest tear diverges from live state")
			}
		})
	}
}

// TestCheckpointAboveMissingTail: every segment deleted, checkpoint
// intact — the pathological "checkpoint newer than the surviving tail"
// shape. Recovery must restart cleanly from the snapshot alone.
func TestCheckpointAboveMissingTail(t *testing.T) {
	const n = 800
	dir := t.TempDir()
	_, _, ckptAge := runCheckpointedStream(t, stm.OUL, dir, "", n, 0, 200)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".wal") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.HasCheckpoint() || rec.First() != ckptAge || rec.Next() != ckptAge || rec.Count() != 0 {
		t.Fatalf("got first=%d next=%d count=%d ckpt=%v, want first=next=%d count=0",
			rec.First(), rec.Next(), rec.Count(), rec.HasCheckpoint(), ckptAge)
	}
	if got := recoverCheckpointedState(t, stm.OUL, rec); !equalState(got, modelTo(ckptAge)) {
		t.Fatal("snapshot-only recovery diverges from the model at the checkpoint age")
	}
}

// TestManualCheckpoint: explicit Checkpoint calls work without
// CheckpointEvery, repeat calls at an unchanged frontier are no-ops,
// and the resulting log restarts without replay.
func TestManualCheckpoint(t *testing.T) {
	dir := t.TempDir()
	accounts := newAccounts(durableAccounts, 1000)
	w, err := wal.Create(dir, 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := stm.NewPipeline(stm.Config{
		Algorithm:   stm.OUL,
		Workers:     2,
		WAL:         w,
		Codec:       tfCodec{accounts: accounts},
		Snapshotter: varsSnapshotter(accounts),
	})
	if err != nil {
		t.Fatal(err)
	}
	submit := func(lo, hi int) {
		t.Helper()
		var wg sync.WaitGroup
		for i := lo; i < hi; i++ {
			tk, err := p.SubmitPayload(transferFor(uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() { defer wg.Done(); tk.Wait() }()
		}
		wg.Wait()
	}
	submit(0, 100)
	age, err := p.Checkpoint()
	if err != nil || age != 100 {
		t.Fatalf("Checkpoint() = %d, %v; want 100, nil", age, err)
	}
	if again, err := p.Checkpoint(); err != nil || again != 100 {
		t.Fatalf("repeat Checkpoint() = %d, %v; want 100, nil (no-op)", again, err)
	}
	submit(100, 150)
	if age, err = p.Checkpoint(); err != nil || age != 150 {
		t.Fatalf("Checkpoint() = %d, %v; want 150, nil", age, err)
	}
	if p.Checkpoints() != 2 {
		t.Fatalf("Checkpoints() = %d, want 2", p.Checkpoints())
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	live := snapshot(accounts)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.HasCheckpoint() || rec.First() != 150 || rec.Count() != 0 {
		t.Fatalf("got first=%d count=%d ckpt=%v, want a replay-free restart at 150",
			rec.First(), rec.Count(), rec.HasCheckpoint())
	}
	if got := recoverCheckpointedState(t, stm.OUL, rec); !equalState(got, live) {
		t.Fatal("snapshot restore diverges from live state")
	}
}

// TestCheckpointConfigValidation: CheckpointEvery demands the full
// checkpoint contract up front.
func TestCheckpointConfigValidation(t *testing.T) {
	accounts := newAccounts(4, 0)
	snap := varsSnapshotter(accounts)
	w, err := wal.Create(t.TempDir(), 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	cases := []struct {
		name string
		cfg  stm.Config
	}{
		{"no WAL", stm.Config{Algorithm: stm.OUL, CheckpointEvery: 10, Snapshotter: snap}},
		{"no snapshotter", stm.Config{Algorithm: stm.OUL, CheckpointEvery: 10, WAL: w, Codec: tfCodec{accounts: accounts}}},
		{"no sink", stm.Config{Algorithm: stm.OUL, CheckpointEvery: 10, WAL: &failingLog{}, Codec: tfCodec{accounts: accounts}, Snapshotter: snap}},
	}
	for _, tc := range cases {
		if _, err := stm.NewPipeline(tc.cfg); err == nil {
			t.Errorf("%s: NewPipeline accepted an incomplete checkpoint config", tc.name)
		}
	}
}
