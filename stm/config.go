package stm

import (
	"fmt"
	"time"

	"github.com/orderedstm/ostm/internal/meta"
	"github.com/orderedstm/ostm/stm/obs"
)

// Config parameterizes an Executor.
type Config struct {
	// Algorithm selects the engine (default Sequential).
	Algorithm Algorithm
	// Workers is the number of worker goroutines (default 1). The
	// paper's thread counts map onto this; for STMLite the commit
	// manager runs on an extra goroutine but is counted as one of the
	// workers to match the paper's accounting ("the number of threads
	// in STMLite also includes its commit manager"), so STMLite runs
	// Workers-1 transaction workers.
	Workers int
	// TableBits sizes the striped lock table at 1<<TableBits records
	// (default 16). Smaller tables increase address aliasing and
	// false conflicts, as in the paper's LSB-mapped locks.
	TableBits uint
	// MaxReaders bounds visible-reader slots per lock record
	// (default 40, the paper's setting).
	MaxReaders int
	// Window bounds how far ahead of the last committed age workers
	// may start new transactions (Algorithm 5's MAX; default
	// 8*Workers, minimum 2*Workers). Only cooperative engines use it.
	Window int
	// SpinBudget bounds optimistic spinning before self-aborting on a
	// busy resource (default 64).
	SpinBudget int
	// SigBits sizes STMLite signatures in bits (default 64, the
	// paper's choice).
	SigBits uint
	// QuiesceAfter is the number of failed validator re-executions of
	// a reachable transaction before the executor gates new exposes to
	// guarantee progress (default 8; see DESIGN.md §5).
	QuiesceAfter int
	// RetryUnknownPanics makes the sandbox retry attempts that panic
	// for reasons it cannot attribute to staleness, instead of
	// reporting a Fault (default false).
	RetryUnknownPanics bool
	// FreshDescriptors disables descriptor recycling: every attempt
	// gets a brand-new descriptor even when the engine supports
	// generation-stamped freelists (default false — recycle). An
	// escape hatch for debugging and for A/B-ing the allocation
	// behavior; committed results are identical either way.
	FreshDescriptors bool

	// The remaining fields only apply to Pipeline (the streaming
	// front-end); Executor.Run ignores them.

	// Capacity bounds how many submissions may be in flight (submitted
	// but not yet committed) before Submit blocks — the pipeline's
	// backpressure depth, measured against the commit frontier.
	// Default 4*Window, floored at Window+Workers+8 so backpressure
	// never strangles the run-ahead window.
	Capacity int
	// EpochAges is the number of commits between pipeline epochs. At
	// each epoch boundary the engine's stats counters are drained into
	// the pipeline's running totals and recyclable engine metadata is
	// scrubbed (meta.Recycler), so an unbounded stream runs in bounded
	// engine state. Default 1<<16.
	EpochAges int
	// FirstAge is the age assigned to the first submission (default
	// 0). A replica resuming from a snapshot at a known consensus slot
	// submits its next command with that slot as FirstAge instead of
	// renumbering from zero.
	FirstAge uint64

	// WAL attaches a write-ahead log (stm/wal.Writer, or any
	// DurableLog): as the commit frontier advances, the pipeline
	// appends each committed age's encoded input payload to the log in
	// age order. A WAL-backed pipeline only accepts submissions that
	// carry a payload (SubmitPayload/SubmitEncoded); see Codec. When
	// recovering, set FirstAge to the recovery's First() and replay
	// the surviving records through SubmitEncoded before submitting
	// new work — re-appends of recovered ages are no-ops.
	WAL DurableLog
	// Codec encodes durable submission payloads and decodes them back
	// into bodies, both live and at recovery. Required when WAL is
	// set.
	Codec Codec
	// WaitDurable defers ticket resolution until the transaction's age
	// is durable (on stable storage), not merely committed in memory.
	// With a sync policy of "none" that only happens at an explicit
	// log Sync or at Close. Requires WAL.
	WaitDurable bool
	// CheckpointEvery, when > 0, checkpoints the pipeline every that
	// many commits: execution quiesces at the next epoch-aligned
	// frontier, Snapshotter.Snapshot serializes the Var space, and the
	// WAL's CheckpointSink commits it and truncates redundant history —
	// bounding recovery time by the checkpoint interval. Requires WAL
	// (implementing CheckpointSink) and Snapshotter.
	CheckpointEvery uint64
	// Snapshotter serializes the application's Var space for
	// checkpoints and restores it at recovery. Required when
	// CheckpointEvery is set.
	Snapshotter Snapshotter
	// OnCommit, when non-nil, is called for every age that reaches its
	// final commit, in commit-report order (age order for every
	// order-enforcing algorithm). It runs on the commit path with
	// pipeline-internal locks held: it must be fast and must not call
	// back into the pipeline. The sharded router uses it to track the
	// global commit frontier across shards.
	OnCommit func(age uint64)
	// Obs, when non-nil, attaches the observability registry: the
	// pipeline registers its lifecycle metric families (commits, abort
	// breakdown, frontier age/lag, backpressure waits, commit/resolve
	// latency histograms, checkpoint duration) and records into them as
	// the stream runs. Attach a trace ring to the registry (SetTrace)
	// before NewPipeline to also capture sampled per-transaction
	// lifecycle events. nil (the default) means zero overhead: no
	// instrument is ever touched on any path. One pipeline per
	// registry; give each pipeline of a process its own registry or a
	// label-scoped view (Registry.With), as the sharded router does.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.TableBits == 0 {
		c.TableBits = meta.DefaultTableBits
	}
	if c.MaxReaders <= 0 {
		c.MaxReaders = meta.DefaultMaxReaders
	}
	if c.Window <= 0 {
		c.Window = 8 * c.Workers
	}
	if c.Window < 2*c.Workers {
		c.Window = 2 * c.Workers
	}
	if c.SpinBudget <= 0 {
		c.SpinBudget = meta.DefaultSpinBudget
	}
	if c.SigBits == 0 {
		c.SigBits = meta.DefaultSigBits
	}
	if c.QuiesceAfter <= 0 {
		c.QuiesceAfter = 8
	}
	if c.Capacity <= 0 {
		c.Capacity = 4 * c.Window
	}
	if min := c.Window + c.Workers + 8; c.Capacity < min {
		c.Capacity = min
	}
	if c.EpochAges <= 0 {
		c.EpochAges = 1 << 16
	}
	return c
}

// Result reports one run.
type Result struct {
	// Algorithm that executed the run.
	Algorithm Algorithm
	// Workers actually used.
	Workers int
	// N is the number of transactions that actually committed. On a
	// clean run it equals Requested; on a faulted (stopped) run it is
	// the partial count of commits that landed before the stop, so a
	// caller that ignores Run's error can still detect partial
	// completion by comparing N against Requested.
	N int
	// Requested is the transaction count the caller asked Run for.
	Requested int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Stats are the engine counters (commits, aborts by cause, ...).
	Stats meta.StatsView
}

// Throughput returns committed transactions per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.N) / r.Elapsed.Seconds()
}

// Fault is returned by Run when a transaction body panicked for a
// reason the sandbox could not attribute to speculative staleness; it
// corresponds to a fault the sequential execution would also hit.
type Fault struct {
	// Age of the faulting transaction.
	Age uint64
	// Value is the recovered panic value.
	Value any
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("stm: transaction %d faulted: %v", f.Age, f.Value)
}

// Unwrap exposes the recovered panic value when it is itself an
// error, so errors.Is/As reach through a Fault to typed causes (a
// body that panicked with a sentinel error, a shard access
// violation).
func (f *Fault) Unwrap() error {
	if err, ok := f.Value.(error); ok {
		return err
	}
	return nil
}
