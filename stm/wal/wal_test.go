package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// payloadFor builds a deterministic, variable-length payload for age.
func payloadFor(age uint64) []byte {
	n := int(age%61) + 1
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(age + uint64(i)*7)
	}
	return p
}

func writeLog(t *testing.T, dir string, first, n uint64, opts Options) {
	t.Helper()
	w, err := Create(dir, first, opts)
	if err != nil {
		t.Fatal(err)
	}
	for age := first; age < first+n; age++ {
		if err := w.Append(age, payloadFor(age)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func checkPrefix(t *testing.T, r *Recovery, first, n uint64) {
	t.Helper()
	if r.First() != first || r.Next() != first+n || uint64(r.Count()) != n {
		t.Fatalf("recovered first=%d next=%d count=%d; want first=%d next=%d count=%d",
			r.First(), r.Next(), r.Count(), first, first+n, n)
	}
	for i, rec := range r.Records() {
		want := first + uint64(i)
		if rec.Age != want {
			t.Fatalf("record %d has age %d, want %d", i, rec.Age, want)
		}
		if !bytes.Equal(rec.Payload, payloadFor(want)) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 0, 500, Options{})
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, r, 0, 500)
	if r.Truncated() {
		t.Fatal("clean log reported truncated")
	}
}

func TestRoundTripNonZeroFirstAge(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 1000, 40, Options{})
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, r, 1000, 40)
}

func TestEmptyLogKeepsFirstAge(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 77, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, r, 77, 0)
}

func TestRecoverMissingDir(t *testing.T) {
	r, err := Recover(filepath.Join(t.TempDir(), "nothing-here"))
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, r, 0, 0)
}

func TestSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rolls.
	writeLog(t, dir, 0, 300, Options{SegmentBytes: 512})
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 10 {
		t.Fatalf("expected many segments, got %d", len(segs))
	}
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, r, 0, 300)
}

func TestReopenedWriterContinues(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 0, 100, Options{SegmentBytes: 1024})
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := r.Writer(Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if w.Next() != 100 {
		t.Fatalf("reopened Next = %d, want 100", w.Next())
	}
	for age := uint64(100); age < 200; age++ {
		if err := w.Append(age, payloadFor(age)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, r2, 0, 200)
}

func TestIdempotentReplayAppends(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 0, 50, Options{})
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := r.Writer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Replaying recovered ages through the writer must be a no-op.
	for _, rec := range r.Records() {
		if err := w.Append(rec.Age, rec.Payload); err != nil {
			t.Fatalf("replay append age %d: %v", rec.Age, err)
		}
	}
	if w.Next() != 50 {
		t.Fatalf("Next moved to %d during replay, want 50", w.Next())
	}
	if err := w.Append(50, payloadFor(50)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, r2, 0, 51)
}

func TestAppendGapRejected(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, []byte("c")); err == nil {
		t.Fatal("age gap accepted")
	}
}

func TestCreateRefusesExistingLog(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 0, 3, Options{})
	if _, err := Create(dir, 0, Options{}); err == nil {
		t.Fatal("Create over an existing log succeeded")
	}
}

func TestDurabilityFrontierAndNotify(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{SyncEveryN: 4})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seen []uint64
	done := make(chan struct{}, 16)
	w.Notify(func(next uint64, err error) {
		if err != nil {
			t.Errorf("notify error: %v", err)
		}
		mu.Lock()
		seen = append(seen, next)
		mu.Unlock()
		select {
		case done <- struct{}{}:
		default:
		}
	})
	if got := w.Durable(); got != 0 {
		t.Fatalf("initial Durable = %d, want 0", got)
	}
	for age := uint64(0); age < 8; age++ {
		if err := w.Append(age, payloadFor(age)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for w.Durable() < 8 {
		select {
		case <-done:
		case <-deadline:
			t.Fatalf("group commit never reached 8 (durable=%d)", w.Durable())
		}
	}
	mu.Lock()
	frontiers := append([]uint64(nil), seen...)
	mu.Unlock()
	if len(frontiers) == 0 {
		t.Fatal("no notifications")
	}
	for i := 1; i < len(frontiers); i++ {
		if frontiers[i] < frontiers[i-1] {
			t.Fatalf("durability frontier went backwards: %v", frontiers)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{SyncInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for w.Durable() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("interval sync never fired (durable=%d)", w.Durable())
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyNoneOnlySyncsExplicitly(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for age := uint64(0); age < 10; age++ {
		if err := w.Append(age, payloadFor(age)); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Durable(); got != 0 {
		t.Fatalf("policy none advanced durability to %d without Sync", got)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.Durable(); got != 10 {
		t.Fatalf("Durable after Sync = %d, want 10", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedWriterRejectsAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, []byte("x")); err == nil {
		t.Fatal("append after Close succeeded")
	}
}

func TestConcurrentAppendAndSync(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{SyncEveryN: 8, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // hammer explicit syncs against the group-commit syncer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := w.Sync(); err != nil {
					t.Errorf("sync: %v", err)
					return
				}
			}
		}
	}()
	for age := uint64(0); age < n; age++ {
		if err := w.Append(age, payloadFor(age)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Durable() != n {
		t.Fatalf("Durable after Close = %d, want %d", w.Durable(), n)
	}
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, r, 0, n)
}

func TestReplayDriver(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 5, 20, Options{})
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ages []uint64
	if err := r.Replay(func(age uint64, payload []byte) error {
		if !bytes.Equal(payload, payloadFor(age)) {
			return fmt.Errorf("payload mismatch at %d", age)
		}
		ages = append(ages, age)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ages) != 20 || ages[0] != 5 || ages[19] != 24 {
		t.Fatalf("replayed ages %v", ages)
	}
}

func TestRecoverDropsSegmentsPastGap(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 0, 200, Options{SegmentBytes: 512})
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 4 {
		t.Fatalf("want several segments (err=%v, n=%d)", err, len(segs))
	}
	// Lose a middle segment: everything from it on is unusable.
	lost := len(segs) / 2
	if err := os.Remove(segs[lost].path); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Truncated() {
		t.Fatal("gap not reported as truncation")
	}
	if r.Next() != segs[lost].age {
		t.Fatalf("Next = %d, want %d (start of lost segment)", r.Next(), segs[lost].age)
	}
	checkPrefix(t, r, 0, segs[lost].age)
	left, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != lost {
		t.Fatalf("%d segments survived, want %d", len(left), lost)
	}
}
