package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Record is one recovered log entry: the encoded input payload of the
// transaction committed at Age.
type Record struct {
	Age     uint64
	Payload []byte
}

// Recovery is the result of scanning a log directory: the surviving
// contiguous prefix of the committed order, with any torn tail already
// truncated from disk. Replay feeds the prefix to a deterministic
// engine; Writer reopens the log for appends where the prefix ends.
type Recovery struct {
	dir       string
	first     uint64
	next      uint64
	recs      []Record
	lastPath  string // surviving tail segment; "" when the directory held none
	lastSize  int64
	truncated bool
}

// Recover scans the log in dir, truncates any torn tail, and returns
// the surviving prefix.
//
// The torn-tail rule: records are read in age order across segments;
// the first record that is short (the crash landed mid-write), fails
// its CRC, or carries an unexpected age marks the cut. The segment is
// truncated at that record's start and every later segment is
// deleted. Everything before the cut is durable, contiguous, and —
// replayed in order — reproduces exactly the sequential-execution
// state of the durable prefix.
//
// Recovering an empty or missing directory yields an empty prefix
// starting at age 0 (Writer will then create the log fresh).
func Recover(dir string) (*Recovery, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	r := &Recovery{dir: dir}
	if len(segs) == 0 {
		return r, nil
	}
	r.first = segs[0].age
	expect := r.first
	for i, seg := range segs {
		if seg.age != expect {
			// A gap (lost segment) or overlap: nothing at or past this
			// file can extend the contiguous prefix.
			if err := removeSegments(dir, segs[i:]); err != nil {
				return nil, err
			}
			r.truncated = true
			break
		}
		n, torn, err := r.readSegment(seg, &expect)
		if err != nil {
			return nil, err
		}
		r.lastPath, r.lastSize = seg.path, n
		if torn {
			if err := removeSegments(dir, segs[i+1:]); err != nil {
				return nil, err
			}
			break
		}
	}
	r.next = expect
	if r.truncated {
		if err := syncDir(dir); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// readSegment reads one segment's records into r.recs, advancing
// *expect per good record. It returns the number of valid bytes and
// whether the segment was torn (in which case it has been truncated
// on disk at the last good record).
func (r *Recovery) readSegment(seg segment, expect *uint64) (int64, bool, error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, false, err
	}
	size := st.Size()
	br := bufio.NewReaderSize(f, 1<<20)
	var offset int64
	for {
		age, payload, err := readRecord(br, size-offset)
		if err == io.EOF {
			return offset, false, nil
		}
		if err != nil || age != *expect {
			// Torn or corrupt tail: cut at the last good record.
			if terr := os.Truncate(seg.path, offset); terr != nil {
				return 0, false, terr
			}
			r.truncated = true
			return offset, true, nil
		}
		r.recs = append(r.recs, Record{Age: age, Payload: payload})
		*expect = age + 1
		offset += recordSize(payload)
	}
}

// First returns the age of the log's first record (the age recovery
// replay must start from; stm.Config.FirstAge for the replaying
// pipeline).
func (r *Recovery) First() uint64 { return r.first }

// Next returns the age one past the last surviving record — where the
// reopened Writer will append, and the frontier a recovered pipeline
// resumes at.
func (r *Recovery) Next() uint64 { return r.next }

// Count returns how many records survived.
func (r *Recovery) Count() int { return len(r.recs) }

// Truncated reports whether the scan found (and cut) a torn tail.
func (r *Recovery) Truncated() bool { return r.truncated }

// Records returns the surviving prefix in age order. The slice is the
// recovery's backing store; treat it as read-only.
func (r *Recovery) Records() []Record { return r.recs }

// Replay is the recovery driver: it hands every surviving payload, in
// age order, to submit — typically Pipeline.SubmitEncoded of a fresh
// pipeline configured with FirstAge = First() — and stops at the
// first error. Replaying through a pipeline attached to this log's
// reopened Writer is safe: re-appends of recovered ages are no-ops.
func (r *Recovery) Replay(submit func(age uint64, payload []byte) error) error {
	for _, rec := range r.recs {
		if err := submit(rec.Age, rec.Payload); err != nil {
			return fmt.Errorf("wal: replay age %d: %w", rec.Age, err)
		}
	}
	return nil
}

// Writer reopens the log for appending at Next. The surviving tail
// segment is extended in place while it has room; otherwise a fresh
// segment starts at Next.
func (r *Recovery) Writer(opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return nil, err
	}
	w := newWriter(r.dir, opts)
	w.next.Store(r.next)
	w.durable.Store(r.next)
	w.nbytes.Store(totalBytes(r.recs))
	if r.lastPath != "" && r.lastSize < opts.SegmentBytes {
		f, err := os.OpenFile(r.lastPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		w.f = f
		w.segSize = r.lastSize
	} else if err := w.openSegment(r.next); err != nil {
		return nil, err
	}
	if err := syncDir(r.dir); err != nil {
		w.f.Close()
		return nil, err
	}
	w.startSyncer()
	return w, nil
}

func totalBytes(recs []Record) uint64 {
	var n uint64
	for _, rec := range recs {
		n += uint64(recordSize(rec.Payload))
	}
	return n
}

// segment is one on-disk log file.
type segment struct {
	age  uint64
	path string
}

// listSegments returns the directory's segments sorted by first age.
// Files that do not match the segment naming scheme are ignored.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		var age uint64
		if n, err := fmt.Sscanf(e.Name(), "%016x.wal", &age); n != 1 || err != nil {
			continue
		}
		if fmt.Sprintf("%016x.wal", age) != e.Name() {
			continue
		}
		segs = append(segs, segment{age: age, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].age < segs[j].age })
	return segs, nil
}

// removeSegments deletes the given segment files (the torn-tail rule's
// "drop everything past the cut").
func removeSegments(dir string, segs []segment) error {
	for _, s := range segs {
		if err := os.Remove(s.path); err != nil {
			return err
		}
	}
	if len(segs) > 0 {
		return syncDir(dir)
	}
	return nil
}
