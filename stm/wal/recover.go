package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Record is one recovered log entry: the encoded input payload of the
// transaction committed at Age.
type Record struct {
	Age     uint64
	Payload []byte
}

// Recovery is the result of scanning a log directory: the newest valid
// checkpoint (if any) plus the surviving contiguous record suffix at
// or above it, with any torn tail already truncated from disk. Replay
// feeds the suffix to a deterministic engine seeded from the
// checkpoint state; Writer reopens the log for appends where the
// suffix ends.
type Recovery struct {
	dir       string
	first     uint64
	next      uint64
	recs      []Record
	lastPath  string // surviving tail segment; "" when the directory held none
	lastSize  int64
	truncated bool

	hasCkpt   bool
	ckptAge   uint64
	ckptState []byte
	skipped   int    // records below the checkpoint, not retained for replay
	skippedB  uint64 // their framed bytes
}

// Recover scans the log in dir, truncates any torn tail, and returns
// the newest valid checkpoint plus the surviving record suffix.
//
// Checkpoint selection: the CHECKPOINT manifest's age is considered
// first, then every `%016x.ckpt` file newest-first; the first
// candidate whose frame verifies wins. A torn manifest or snapshot is
// skipped, not fatal — recovery degrades to an older checkpoint, or
// to full replay when no checkpoint verifies.
//
// The torn-tail rule: records are read in age order across segments;
// the first record that is short (the crash landed mid-write), fails
// its CRC, or carries an unexpected age marks the cut. The segment is
// truncated at that record's start and every later segment is
// deleted. Everything before the cut is durable, contiguous, and —
// folded into the checkpoint state in order — reproduces exactly the
// sequential-execution state of the durable prefix. Records below the
// checkpoint age are CRC-verified (they anchor the contiguity chain)
// but not retained: Records and Replay expose only the suffix at or
// above the checkpoint.
//
// Recovering an empty or missing directory yields an empty prefix
// starting at age 0 (Writer will then create the log fresh).
func Recover(dir string) (*Recovery, error) {
	r := &Recovery{dir: dir}
	if err := r.loadCheckpoint(); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if r.hasCkpt {
			r.first, r.next = r.ckptAge, r.ckptAge
		}
		return r, nil
	}
	segFirst := segs[0].age
	expect := segFirst
	for i, seg := range segs {
		if seg.age != expect {
			// A gap (lost segment) or overlap: nothing at or past this
			// file can extend the contiguous prefix.
			if err := removeSegments(dir, segs[i:]); err != nil {
				return nil, err
			}
			r.truncated = true
			break
		}
		n, torn, err := r.readSegment(seg, &expect)
		if err != nil {
			return nil, err
		}
		r.lastPath, r.lastSize = seg.path, n
		if torn {
			if err := removeSegments(dir, segs[i+1:]); err != nil {
				return nil, err
			}
			break
		}
	}
	r.next = expect
	r.first = segFirst
	if r.hasCkpt {
		if err := r.reconcile(segFirst); err != nil {
			return nil, err
		}
	}
	if r.truncated {
		if err := syncDir(dir); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// loadCheckpoint picks the newest checkpoint that verifies.
func (r *Recovery) loadCheckpoint() error {
	ages, err := listCheckpoints(r.dir)
	if err != nil {
		return err
	}
	var cands []uint64
	if a, ok := readManifest(r.dir); ok {
		cands = append(cands, a)
	}
	for i := len(ages) - 1; i >= 0; i-- {
		if len(cands) > 0 && ages[i] == cands[0] {
			continue
		}
		cands = append(cands, ages[i])
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i] > cands[j] })
	for _, age := range cands {
		state, err := readCheckpointFile(checkpointPath(r.dir, age), age)
		if err != nil {
			continue // torn or missing: fall back to the next candidate
		}
		r.hasCkpt, r.ckptAge, r.ckptState = true, age, state
		return nil
	}
	return nil
}

// reconcile aligns the scanned record chain with the checkpoint.
// segFirst is the first scanned segment's age; r.next the frontier the
// scan reached. Three shapes need care:
//
//   - checkpoint newer than the surviving tail (the tail was torn or
//     segments were lost after the checkpoint committed): every
//     surviving record is already folded into the checkpoint state, so
//     the segments are dropped and the log restarts at the checkpoint;
//   - a gap between the checkpoint and the first surviving segment
//     (records the checkpoint does not cover are missing): the suffix
//     is unusable, the checkpoint state stands alone;
//   - the normal shape — the chain spans the checkpoint age — where
//     replay starts at the checkpoint and the records below it were
//     already dropped during the scan.
func (r *Recovery) reconcile(segFirst uint64) error {
	if r.ckptAge > r.next || segFirst > r.ckptAge {
		segs, err := listSegments(r.dir)
		if err != nil {
			return err
		}
		if err := removeSegments(r.dir, segs); err != nil {
			return err
		}
		r.truncated = true // records were genuinely lost either way
		r.skipped += len(r.recs)
		for _, rec := range r.recs {
			r.skippedB += uint64(recordSize(rec.Payload))
		}
		r.recs = nil
		r.lastPath, r.lastSize = "", 0
		r.first, r.next = r.ckptAge, r.ckptAge
		return nil
	}
	r.first = r.ckptAge
	return nil
}

// readSegment reads one segment's records, advancing *expect per good
// record. Records at or above the checkpoint age are retained in
// r.recs; older ones only anchor the chain and are counted as skipped.
// It returns the number of valid bytes and whether the segment was
// torn (in which case it has been truncated on disk at the last good
// record).
func (r *Recovery) readSegment(seg segment, expect *uint64) (int64, bool, error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, false, err
	}
	size := st.Size()
	br := bufio.NewReaderSize(f, 1<<20)
	var offset int64
	for {
		age, payload, err := readRecord(br, size-offset)
		if err == io.EOF {
			return offset, false, nil
		}
		if err != nil || age != *expect {
			// Torn or corrupt tail: cut at the last good record.
			if terr := os.Truncate(seg.path, offset); terr != nil {
				return 0, false, terr
			}
			r.truncated = true
			return offset, true, nil
		}
		if r.hasCkpt && age < r.ckptAge {
			r.skipped++
			r.skippedB += uint64(recordSize(payload))
		} else {
			r.recs = append(r.recs, Record{Age: age, Payload: payload})
		}
		*expect = age + 1
		offset += recordSize(payload)
	}
}

// First returns the age recovery replay must start from: the
// checkpoint age when a checkpoint was loaded (seed the engine with
// CheckpointState, then replay), otherwise the log's first record
// (stm.Config.FirstAge for the replaying pipeline).
func (r *Recovery) First() uint64 { return r.first }

// Next returns the age one past the last surviving record — where the
// reopened Writer will append, and the frontier a recovered pipeline
// resumes at.
func (r *Recovery) Next() uint64 { return r.next }

// Count returns how many records survived for replay (records below
// the checkpoint are not counted; see Skipped).
func (r *Recovery) Count() int { return len(r.recs) }

// Truncated reports whether the scan found (and cut) a torn tail.
func (r *Recovery) Truncated() bool { return r.truncated }

// HasCheckpoint reports whether a valid checkpoint was loaded.
func (r *Recovery) HasCheckpoint() bool { return r.hasCkpt }

// CheckpointAge returns the loaded checkpoint's frontier age (0 when
// HasCheckpoint is false). Every record below it is folded into
// CheckpointState; replay covers only [CheckpointAge, Next).
func (r *Recovery) CheckpointAge() uint64 { return r.ckptAge }

// CheckpointState returns the loaded checkpoint's application state
// (nil when HasCheckpoint is false). Treat it as read-only.
func (r *Recovery) CheckpointState() []byte { return r.ckptState }

// Skipped returns how many durable records the checkpoint made
// redundant — the log the recovery did *not* have to replay — and
// their framed bytes.
func (r *Recovery) Skipped() (records int, bytes uint64) { return r.skipped, r.skippedB }

// Records returns the surviving replay suffix in age order. The slice
// is the recovery's backing store; treat it as read-only.
func (r *Recovery) Records() []Record { return r.recs }

// Replay is the recovery driver: it hands every surviving payload, in
// age order, to submit — typically Pipeline.SubmitEncoded of a fresh
// pipeline configured with FirstAge = First() and seeded from
// CheckpointState — and stops at the first error. Replaying through a
// pipeline attached to this log's reopened Writer is safe: re-appends
// of recovered ages are no-ops.
func (r *Recovery) Replay(submit func(age uint64, payload []byte) error) error {
	for _, rec := range r.recs {
		if err := submit(rec.Age, rec.Payload); err != nil {
			return fmt.Errorf("wal: replay age %d: %w", rec.Age, err)
		}
	}
	return nil
}

// Writer reopens the log for appending at Next. The surviving tail
// segment is extended in place while it has room; otherwise a fresh
// segment starts at Next.
func (r *Recovery) Writer(opts Options) (*Writer, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return nil, err
	}
	w := newWriter(r.dir, opts)
	w.next.Store(r.next)
	w.durable.Store(r.next)
	w.nbytes.Store(totalBytes(r.recs) + r.skippedB)
	if r.hasCkpt {
		w.ckptAge_.Store(r.ckptAge)
	}
	if r.lastPath != "" && r.lastSize < opts.SegmentBytes {
		f, err := w.fs.OpenFile(r.lastPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		w.f = f
		w.segSize = r.lastSize
	} else if err := w.openSegment(r.next); err != nil {
		return nil, err
	}
	if err := w.fs.SyncDir(r.dir); err != nil {
		w.f.Close()
		return nil, err
	}
	w.startSyncer()
	return w, nil
}

func totalBytes(recs []Record) uint64 {
	var n uint64
	for _, rec := range recs {
		n += uint64(recordSize(rec.Payload))
	}
	return n
}

// segment is one on-disk log file.
type segment struct {
	age  uint64
	path string
}

// listSegments returns the directory's segments sorted by first age.
// Files that do not match the segment naming scheme are ignored.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		var age uint64
		if n, err := fmt.Sscanf(e.Name(), "%016x.wal", &age); n != 1 || err != nil {
			continue
		}
		if fmt.Sprintf("%016x.wal", age) != e.Name() {
			continue
		}
		segs = append(segs, segment{age: age, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].age < segs[j].age })
	return segs, nil
}

// removeSegments deletes the given segment files (the torn-tail rule's
// "drop everything past the cut").
func removeSegments(dir string, segs []segment) error {
	for _, s := range segs {
		if err := os.Remove(s.path); err != nil {
			return err
		}
	}
	if len(segs) > 0 {
		return syncDir(dir)
	}
	return nil
}
