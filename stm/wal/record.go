package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Record framing. Every record is self-checking so a torn tail is
// detectable at any cut point:
//
//	offset 0  u32 LE  payload length
//	offset 4  u32 LE  CRC-32C over (length, age, payload)
//	offset 8  u64 LE  age
//	offset 16 ...     payload
//
// The CRC covers the length and age fields too, so a bit flip in the
// header (not just the payload) fails the check, and a record whose
// length field was torn cannot masquerade as valid by chance.

const (
	headerSize = 16
	// maxPayload bounds a single record; a length beyond it is treated
	// as corruption rather than an attempt to allocate it.
	maxPayload = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recordCRC computes the checksum the frame stores.
func recordCRC(length uint32, age uint64, payload []byte) uint32 {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], length)
	binary.LittleEndian.PutUint64(hdr[4:12], age)
	c := crc32.Update(0, crcTable, hdr[:])
	return crc32.Update(c, crcTable, payload)
}

// appendRecord appends the framed record to buf and returns the
// extended slice. The checksum is computed over the destination
// buffer in place (a temporary header array would escape through
// crc32.Update and cost an allocation per append on the commit path).
func appendRecord(buf []byte, age uint64, payload []byte) []byte {
	start := len(buf)
	var hdr [headerSize]byte
	buf = append(buf, hdr[:]...)
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[start+8:], age)
	buf = append(buf, payload...)
	c := crc32.Update(0, crcTable, buf[start:start+4])
	c = crc32.Update(c, crcTable, buf[start+8:start+headerSize])
	c = crc32.Update(c, crcTable, buf[start+headerSize:])
	binary.LittleEndian.PutUint32(buf[start+4:], c)
	return buf
}

// recordSize returns the framed size of a payload.
func recordSize(payload []byte) int64 { return headerSize + int64(len(payload)) }

// errTorn marks a read that ended in a torn or corrupt record; the
// wrapped detail is diagnostic only — recovery truncates at the
// record's start either way.
type tornError struct{ reason string }

func (e *tornError) Error() string { return "wal: torn record: " + e.reason }

// readRecord reads one record from r, verifying the frame. remaining
// bounds how many bytes the segment still holds past the current
// offset, so a garbage length field from a torn tail is rejected
// before allocating for it. It returns io.EOF at a clean segment end,
// and a *tornError for a short or corrupt record.
func readRecord(r io.Reader, remaining int64) (age uint64, payload []byte, err error) {
	var hdr [headerSize]byte
	n, err := io.ReadFull(r, hdr[:])
	if err == io.EOF && n == 0 {
		return 0, nil, io.EOF
	}
	if err != nil {
		return 0, nil, &tornError{reason: "short header"}
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	age = binary.LittleEndian.Uint64(hdr[8:16])
	if length > maxPayload || int64(length) > remaining-headerSize {
		return 0, nil, &tornError{reason: fmt.Sprintf("implausible length %d", length)}
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, &tornError{reason: "short payload"}
	}
	if recordCRC(length, age, payload) != crc {
		return 0, nil, &tornError{reason: "checksum mismatch"}
	}
	return age, payload, nil
}
