package wal

import (
	"sync/atomic"

	"github.com/orderedstm/ostm/stm/obs"
)

// walObs bundles the writer's observability instruments. Handles are
// resolved once at startSyncer, so the sync path touches plain
// pointers and atomic adds — never the registry. A nil *walObs (no
// Options.Obs) keeps every instrumented path on a single predictable
// branch.
type walObs struct {
	fsyncLat   *obs.Histogram // ns per datasync call
	groupSize  *obs.Histogram // records covered per admitted sync group
	prevTarget atomic.Uint64  // target frontier of the previous admission
}

// newWalObs registers the writer's metric families on r and returns
// the resolved handles. Frontier-style monotone atomics are exposed
// through gauge/counter funcs so snapshots read the live values with
// no recording cost on the writer side.
func newWalObs(r *obs.Registry, w *Writer) *walObs {
	wo := &walObs{}
	wo.prevTarget.Store(w.next.Load())
	wo.fsyncLat = r.DurationHistogram("ostm_wal_fsync_seconds",
		"latency of one fdatasync (or directory sync batch) on the sync stage")
	wo.groupSize = r.Histogram("ostm_wal_group_size",
		"records covered by one admitted sync group (group-commit batch size)")
	r.CounterFunc("ostm_wal_fsyncs_total",
		"fsyncs issued by the writer",
		func() float64 { return float64(w.fsyncs.Load()) })
	r.CounterFunc("ostm_wal_bytes_total",
		"framed bytes appended over the log's life, recovered history included",
		func() float64 { return float64(w.nbytes.Load()) })
	r.CounterFunc("ostm_wal_overlapped_syncs_total",
		"sync groups admitted while an earlier group's fsync was still in flight",
		func() float64 { return float64(w.overlaps.Load()) })
	r.GaugeFunc("ostm_wal_sync_inflight",
		"sync groups admitted but not yet completed",
		func() float64 { return float64(w.inflight.Load()) })
	r.GaugeFunc("ostm_wal_sync_depth_max",
		"high watermark of concurrently in-flight sync groups",
		func() float64 { return float64(w.depthMax.Load()) })
	r.GaugeFunc("ostm_wal_appended_age",
		"next age the writer expects to append",
		func() float64 { return float64(w.next.Load()) })
	r.GaugeFunc("ostm_wal_durable_age",
		"durability frontier: every age below it is on stable storage",
		func() float64 { return float64(w.durable.Load()) })
	for _, c := range []struct {
		op  string
		cnt *atomic.Uint64
	}{
		{"write", &w.ioErrs.write},
		{"fsync", &w.ioErrs.fsync},
		{"dirsync", &w.ioErrs.dirsync},
		{"open", &w.ioErrs.open},
		{"ckpt", &w.ioErrs.ckpt},
	} {
		cnt := c.cnt
		r.With("op", c.op).CounterFunc("ostm_wal_io_errors_total",
			"failed I/O attempts on the durable path, by operation class",
			func() float64 { return float64(cnt.Load()) })
	}
	r.CounterFunc("ostm_wal_retries_total",
		"I/O operations re-attempted after a transient failure",
		func() float64 { return float64(w.retries.Load()) })
	r.GaugeFunc("ostm_wal_degraded",
		"1 once the log has detached under OnFail=Degrade",
		func() float64 {
			if w.degraded.Load() {
				return 1
			}
			return 0
		})
	r.CounterFunc("ostm_wal_checkpoints_total",
		"checkpoints durably committed by the writer",
		func() float64 { return float64(w.ckpts.Load()) })
	r.GaugeFunc("ostm_wal_checkpoint_age",
		"frontier age of the newest committed checkpoint",
		func() float64 { return float64(w.ckptAge_.Load()) })
	return wo
}

// admitted records the batch size of a freshly admitted sync group.
// Admissions are serialized under admitMu, so the prev-target swap
// sees them in order.
func (wo *walObs) admitted(target uint64) {
	if wo == nil {
		return
	}
	if prev := wo.prevTarget.Swap(target); target > prev {
		wo.groupSize.Observe(int64(target - prev))
	}
}
