package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fill appends ages [from, to) with small payloads and syncs.
func fill(t *testing.T, w *Writer, from, to uint64) {
	t.Helper()
	for age := from; age < to; age++ {
		if err := w.Append(age, []byte{byte(age), byte(age >> 8), 0xAB}); err != nil {
			t.Fatalf("append %d: %v", age, err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

func TestSegmentsListing(t *testing.T) {
	dir := t.TempDir()
	// Empty/missing directories list cleanly.
	if segs, err := Segments(filepath.Join(dir, "nope")); err != nil || len(segs) != 0 {
		t.Fatalf("missing dir: segs=%v err=%v", segs, err)
	}
	w, err := Create(dir, 0, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, w, 0, 20)
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments with 64-byte cap, got %d", len(segs))
	}
	for i, s := range segs {
		if i > 0 && s.FirstAge <= segs[i-1].FirstAge {
			t.Fatalf("segments out of order: %v", segs)
		}
		st, err := os.Stat(s.Path)
		if err != nil {
			t.Fatalf("stat %s: %v", s.Path, err)
		}
		if st.Size() != s.Size {
			t.Fatalf("segment %016x: Size %d, stat says %d", s.FirstAge, s.Size, st.Size())
		}
	}
	if segs[0].FirstAge != 0 {
		t.Fatalf("first segment at %d, want 0", segs[0].FirstAge)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointsAndRead(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, w, 0, 10)
	if err := w.Checkpoint(5, []byte("state@5")); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(10, []byte("state@10")); err != nil {
		t.Fatal(err)
	}
	ages, err := Checkpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ages) != 2 || ages[0] != 5 || ages[1] != 10 {
		t.Fatalf("checkpoint ages %v, want [5 10]", ages)
	}
	state, err := ReadCheckpoint(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if string(state) != "state@10" {
		t.Fatalf("state %q", state)
	}
	if _, err := ReadCheckpoint(dir, 7); err == nil {
		t.Fatal("reading a checkpoint that does not exist should fail")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordCRCMatchesFrame(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("the exported checksum must equal the on-disk one")
	if err := w.Append(3, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir) // Recover verifies the stored CRC
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() != 1 {
		t.Fatalf("recovered %d records", rec.Count())
	}
	// Cross-check: the frame Recover accepted carries exactly RecordCRC.
	if got := RecordCRC(3, payload); got != recordCRC(uint32(len(payload)), 3, payload) {
		t.Fatalf("RecordCRC disagrees with the private frame checksum: %08x", got)
	}
	if FrameSize(payload) != recordSize(payload) {
		t.Fatal("FrameSize disagrees with the private frame size")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCursorWalksLiveLog(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fill(t, w, 0, 50)

	c, err := NewCursor(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got uint64
	for {
		age, payload, ok, err := c.Next(w.Durable())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if age != got {
			t.Fatalf("cursor returned age %d, want %d", age, got)
		}
		if len(payload) != 3 || payload[0] != byte(age) {
			t.Fatalf("age %d payload %x", age, payload)
		}
		got++
	}
	if got != 50 {
		t.Fatalf("cursor stopped at %d, want 50", got)
	}
	if c.Segments() < 2 {
		t.Fatalf("cursor crossed %d segments, expected several", c.Segments())
	}

	// The writer keeps appending; the same cursor picks up the new tail.
	fill(t, w, 50, 60)
	for {
		age, _, ok, err := c.Next(w.Durable())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if age != got {
			t.Fatalf("tail: age %d, want %d", age, got)
		}
		got++
	}
	if got != 60 {
		t.Fatalf("cursor frontier %d after tail append, want 60", got)
	}
}

func TestCursorMidLogStartAndLimit(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fill(t, w, 0, 40)

	c, err := NewCursor(dir, 17) // mid-segment resume: open() must skip to it
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	age, _, ok, err := c.Next(w.Durable())
	if err != nil || !ok || age != 17 {
		t.Fatalf("mid-log start: age=%d ok=%v err=%v", age, ok, err)
	}
	// A limit below the durable frontier stops the cursor early.
	last := age
	for {
		age, _, ok, err = c.Next(25)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		last = age
	}
	if last != 24 {
		t.Fatalf("cursor crossed limit: last age %d, want 24", last)
	}
}

func TestCursorCompacted(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fill(t, w, 0, 40)
	// Two checkpoints so pruning truncates segments below the older one.
	if err := w.Checkpoint(20, []byte("s20")); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(35, []byte("s35")); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0].FirstAge == 0 {
		t.Fatalf("expected pruning to drop the oldest segments: %+v", segs)
	}
	c, err := NewCursor(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, _, err := c.Next(w.Durable()); !errors.Is(err, ErrCompacted) {
		t.Fatalf("want ErrCompacted, got %v", err)
	}
	// Restarting at the retained floor works.
	c2, err := NewCursor(dir, segs[0].FirstAge)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	age, _, ok, err := c2.Next(w.Durable())
	if err != nil || !ok || age != segs[0].FirstAge {
		t.Fatalf("restart at floor: age=%d ok=%v err=%v", age, ok, err)
	}
}

func TestTapFiresInFrontierOrder(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{SyncEveryN: 4})
	if err != nil {
		t.Fatal(err)
	}
	var frontiers []uint64
	ch := make(chan uint64, 64)
	w.Tap(func(d uint64) { ch <- d })
	for age := uint64(0); age < 32; age++ {
		if err := w.Append(age, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	close(ch)
	for d := range ch {
		frontiers = append(frontiers, d)
	}
	if len(frontiers) == 0 {
		t.Fatal("tap never fired")
	}
	for i := 1; i < len(frontiers); i++ {
		if frontiers[i] < frontiers[i-1] {
			t.Fatalf("tap frontiers regressed: %v", frontiers)
		}
	}
	if last := frontiers[len(frontiers)-1]; last != 32 {
		t.Fatalf("final tap frontier %d, want 32", last)
	}
}
