package wal

import "os"

// File is the writable-file surface of the durable path: segment and
// checkpoint files are written, made durable, and closed through it.
type File interface {
	Write(p []byte) (n int, err error)
	// Fdatasync flushes the file's appended data (and the metadata
	// needed to retrieve it, i.e. the size extension) to stable
	// storage. Implementations without fdatasync use a full fsync.
	Fdatasync() error
	Close() error
}

// FS is the filesystem surface of the durable path. Every write-side
// operation the Writer performs — opening segments, appending,
// syncing, the checkpoint rename commit, pruning, directory syncs —
// flows through it, so a test FS (see internal/faultfs) can inject
// I/O failures deterministically. Options.FS selects the
// implementation; nil means OS, the passthrough backed by package os.
//
// Recovery's read-side scan (and its torn-tail truncation) runs on the
// real filesystem: fault injection targets the live writer, not the
// post-crash reader.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory so entry creation/removal/rename
	// survives a crash. EINVAL from a filesystem that cannot sync
	// directories must be treated as success.
	SyncDir(dir string) error
}

// OS is the passthrough FS backed by package os. It adds no
// indirection cost on the hot path: interface method calls do not
// allocate, and the one File boxing happens per segment open, off the
// append path.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error { return syncDir(dir) }

type osFile struct{ *os.File }
