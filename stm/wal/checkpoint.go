package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Checkpoint on-disk format. A checkpoint is two files:
//
// A snapshot file, `%016x.ckpt`, named by its frontier age:
//
//	offset 0  8 bytes  magic "OSTMCKP1"
//	offset 8  u64 LE   age (must match the file name)
//	offset 16 u32 LE   state length
//	offset 20 u32 LE   CRC-32C over (length, age, state) — record framing
//	offset 24 ...      state
//
// and the manifest, `CHECKPOINT`, that commits it:
//
//	offset 0  8 bytes  magic "OSTMMAN1"
//	offset 8  u64 LE   age of the committed checkpoint
//	offset 16 u32 LE   CRC-32C over the age field
//
// Both are written to a temp file, fsynced, renamed into place, and
// the directory synced — the manifest last, so its atomic rename is
// the commit point: a crash anywhere earlier leaves the previous
// checkpoint in force. Recovery treats the manifest as a hint, not an
// authority: it considers the manifest's age first, then every .ckpt
// file newest-first, and uses the first one whose frame verifies —
// so a torn manifest or a torn snapshot degrades recovery (to an
// older checkpoint, or to full replay), never blocks it.

const (
	ckptMagic     = "OSTMCKP1"
	manifestMagic = "OSTMMAN1"
	manifestName  = "CHECKPOINT"
	ckptHeader    = 24 // magic + age + length + crc
	manifestSize  = 20 // magic + age + crc
)

func checkpointPath(dir string, age uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x.ckpt", age))
}

func manifestCRC(age uint64) uint32 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], age)
	return crc32.Checksum(b[:], crcTable)
}

// writeFileAtomic writes data to a temp file in dir, fsyncs it, and
// renames it to name. The rename is the commit point; the caller
// syncs the directory to make it survive a crash. The temp name is
// deterministic (`name.tmp`): the segment/checkpoint listers ignore
// it, so an orphan left by a crash or a failed rename is invisible to
// recovery and simply overwritten by the next attempt.
func writeFileAtomic(fs FS, dir, name string, data []byte) error {
	tmpPath := filepath.Join(dir, name+".tmp")
	tmp, err := fs.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Fdatasync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmpPath, filepath.Join(dir, name)); err != nil {
		fs.Remove(tmpPath) // best effort; a surviving orphan is ignored
		return err
	}
	return nil
}

// writeCheckpointFile durably writes the snapshot file for age.
func writeCheckpointFile(fs FS, dir string, age uint64, state []byte) error {
	buf := make([]byte, 0, ckptHeader+len(state))
	buf = append(buf, ckptMagic...)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], age)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(state)))
	binary.LittleEndian.PutUint32(hdr[12:16], recordCRC(uint32(len(state)), age, state))
	buf = append(buf, hdr[:]...)
	buf = append(buf, state...)
	return writeFileAtomic(fs, dir, fmt.Sprintf("%016x.ckpt", age), buf)
}

// readCheckpointFile reads and verifies the snapshot file at path,
// expecting the age its name carries. Any framing violation returns an
// error; recovery treats it as "this checkpoint does not exist".
func readCheckpointFile(path string, wantAge uint64) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < ckptHeader || string(data[:8]) != ckptMagic {
		return nil, &tornError{reason: "checkpoint header"}
	}
	age := binary.LittleEndian.Uint64(data[8:16])
	length := binary.LittleEndian.Uint32(data[16:20])
	crc := binary.LittleEndian.Uint32(data[20:24])
	if age != wantAge {
		return nil, &tornError{reason: "checkpoint age mismatch"}
	}
	state := data[ckptHeader:]
	if uint64(length) != uint64(len(state)) {
		return nil, &tornError{reason: "checkpoint length mismatch"}
	}
	if recordCRC(length, age, state) != crc {
		return nil, &tornError{reason: "checkpoint checksum mismatch"}
	}
	return state, nil
}

// writeManifest durably commits the checkpoint at age via atomic
// rename of the CHECKPOINT manifest.
func writeManifest(fs FS, dir string, age uint64) error {
	var buf [manifestSize]byte
	copy(buf[:8], manifestMagic)
	binary.LittleEndian.PutUint64(buf[8:16], age)
	binary.LittleEndian.PutUint32(buf[16:20], manifestCRC(age))
	return writeFileAtomic(fs, dir, manifestName, buf[:])
}

// readManifest returns the committed checkpoint age, or (0, false) if
// the manifest is absent, torn, or corrupt.
func readManifest(dir string) (uint64, bool) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil || len(data) != manifestSize || string(data[:8]) != manifestMagic {
		return 0, false
	}
	age := binary.LittleEndian.Uint64(data[8:16])
	if binary.LittleEndian.Uint32(data[16:20]) != manifestCRC(age) {
		return 0, false
	}
	return age, true
}

// listCheckpoints returns the ages of the directory's snapshot files,
// sorted ascending. Files not matching the naming scheme are ignored.
func listCheckpoints(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ages []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		var age uint64
		if n, err := fmt.Sscanf(e.Name(), "%016x.ckpt", &age); n != 1 || err != nil {
			continue
		}
		if fmt.Sprintf("%016x.ckpt", age) != e.Name() {
			continue
		}
		ages = append(ages, age)
	}
	sort.Slice(ages, func(i, j int) bool { return ages[i] < ages[j] })
	return ages, nil
}

// Checkpoint durably records state as the application snapshot at
// frontier age: every record below age is folded into state, and
// recovery from this log may start at age and replay only the suffix.
//
// age must not exceed the log's append frontier, and everything below
// it is made durable first (the checkpoint must never claim records
// the log could lose). After the manifest commit, the two newest
// checkpoints are retained — the older as a fallback should the
// newest prove torn — and segments wholly below the older one are
// truncated, which is what bounds both disk usage and recovery time
// by the checkpoint interval.
func (w *Writer) Checkpoint(age uint64, state []byte) error {
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()
	if age > w.next.Load() {
		return fmt.Errorf("wal: checkpoint age %d beyond append frontier %d", age, w.next.Load())
	}
	if w.durable.Load() < age {
		if err := w.Sync(); err != nil {
			return err
		}
	}
	if err := writeCheckpointFile(w.fs, w.dir, age, state); err != nil {
		w.ioErrs.ckpt.Add(1)
		return err
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		w.ioErrs.ckpt.Add(1)
		return err
	}
	if err := writeManifest(w.fs, w.dir, age); err != nil {
		w.ioErrs.ckpt.Add(1)
		return err
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		w.ioErrs.ckpt.Add(1)
		return err
	}
	w.ckptAge_.Store(age)
	w.ckpts.Add(1)
	return w.pruneCheckpoints(age)
}

// CheckpointAge returns the age of the newest checkpoint this writer
// committed (0 when none).
func (w *Writer) CheckpointAge() uint64 { return w.ckptAge_.Load() }

// Checkpoints returns how many checkpoints this writer committed.
func (w *Writer) Checkpoints() uint64 { return w.ckpts.Load() }

// pruneCheckpoints enforces the retention rule after a commit at
// newest: keep the two newest checkpoints, delete older snapshot
// files, and truncate segments wholly below the *older* kept
// checkpoint. Truncating below the newest instead would make a torn
// newest checkpoint unrecoverable — the fallback checkpoint must keep
// the records above it.
func (w *Writer) pruneCheckpoints(newest uint64) error {
	ages, err := listCheckpoints(w.dir)
	if err != nil {
		return err
	}
	keepFloor := newest
	if n := len(ages); n >= 2 {
		keepFloor = ages[n-2] // older of the two newest
	}
	removed := false
	for _, a := range ages {
		if a < keepFloor {
			if err := w.fs.Remove(checkpointPath(w.dir, a)); err != nil {
				return err
			}
			removed = true
		}
	}
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	// Segment i is wholly below keepFloor iff the next segment starts
	// at or below it (segment i's records all precede segs[i+1].age).
	// The current segment (and the tail in general) is never removed.
	var drop []segment
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].age <= keepFloor {
			drop = append(drop, segs[i])
		}
	}
	for _, s := range drop {
		if err := w.fs.Remove(s.path); err != nil {
			return err
		}
		removed = true
	}
	if removed {
		return w.fs.SyncDir(w.dir)
	}
	return nil
}
