package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestOptionsValidation(t *testing.T) {
	cases := []Options{
		{SyncEveryN: -1},
		{SyncInterval: -time.Second},
		{AdaptiveBytes: -1},
		{MaxInFlightSyncs: -2},
		{SegmentBytes: -64},
		{Adaptive: true, SyncEveryN: 8},
		{Retry: RetryPolicy{Max: -1}},
		{Retry: RetryPolicy{Backoff: -time.Millisecond}},
		{Retry: RetryPolicy{MaxBackoff: -time.Millisecond}},
		{OnFail: FailPolicy(7)},
	}
	for i, o := range cases {
		if _, err := Create(t.TempDir(), 0, o); err == nil {
			t.Errorf("case %d: Create accepted invalid options %+v", i, o)
		}
	}
	// The same validation must guard the recovery path.
	dir := t.TempDir()
	writeLog(t, dir, 0, 3, Options{})
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Writer(Options{SyncEveryN: -5}); err == nil {
		t.Fatal("Recovery.Writer accepted negative SyncEveryN")
	}
}

func TestPolicyStrings(t *testing.T) {
	cases := []struct {
		o    Options
		want string
	}{
		{Options{}, "none"},
		{Options{SyncEveryN: 64}, "every=64"},
		{Options{SyncInterval: 5 * time.Millisecond}, "interval=5ms"},
		{Options{SyncEveryN: 8, SyncInterval: time.Second}, "every=8+interval=1s"},
		{Options{Adaptive: true}, "adaptive(bytes=262144,depth=2)"},
		{Options{Adaptive: true, AdaptiveBytes: 1024, MaxInFlightSyncs: 4},
			"adaptive(bytes=1024,depth=4)"},
		{Options{Adaptive: true, SyncInterval: 2 * time.Millisecond},
			"adaptive(bytes=262144,depth=2)+interval=2ms"},
	}
	for _, c := range cases {
		if got := c.o.withDefaults().policy(); got != c.want {
			t.Errorf("policy(%+v) = %q, want %q", c.o, got, c.want)
		}
	}
}

// ckptState builds a deterministic fake application snapshot for a
// frontier age.
func ckptState(age uint64) []byte {
	s := make([]byte, 64)
	for i := range s {
		s[i] = byte(age*31 + uint64(i))
	}
	return s
}

// writeCheckpointedLog writes n records starting at 0 and commits a
// checkpoint at ckptAge, returning the directory.
func writeCheckpointedLog(t *testing.T, n, ckptAge uint64, opts Options) string {
	t.Helper()
	dir := t.TempDir()
	w, err := Create(dir, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	for age := uint64(0); age < n; age++ {
		if err := w.Append(age, payloadFor(age)); err != nil {
			t.Fatal(err)
		}
		if age+1 == ckptAge {
			if err := w.Checkpoint(ckptAge, ckptState(ckptAge)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCheckpointRoundTrip(t *testing.T) {
	const n, ck = 100, 60
	dir := writeCheckpointedLog(t, n, ck, Options{})
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasCheckpoint() || r.CheckpointAge() != ck {
		t.Fatalf("checkpoint: has=%v age=%d, want age %d", r.HasCheckpoint(), r.CheckpointAge(), ck)
	}
	if !bytes.Equal(r.CheckpointState(), ckptState(ck)) {
		t.Fatal("checkpoint state mismatch")
	}
	if r.First() != ck || r.Next() != n || r.Count() != n-ck {
		t.Fatalf("first=%d next=%d count=%d, want %d %d %d", r.First(), r.Next(), r.Count(), ck, n, n-ck)
	}
	skipped, skippedB := r.Skipped()
	if skipped != ck || skippedB == 0 {
		t.Fatalf("skipped=%d (%d bytes), want %d records", skipped, skippedB, ck)
	}
	for i, rec := range r.Records() {
		want := uint64(ck + i)
		if rec.Age != want || !bytes.Equal(rec.Payload, payloadFor(want)) {
			t.Fatalf("suffix record %d: age %d", i, rec.Age)
		}
	}
	// The reopened writer continues at the frontier.
	w, err := r.Writer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.Next() != n || w.CheckpointAge() != ck {
		t.Fatalf("reopened next=%d ckpt=%d", w.Next(), w.CheckpointAge())
	}
	if err := w.Append(n, payloadFor(n)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointAtFrontier(t *testing.T) {
	// Checkpoint exactly at Next: nothing to replay, but the log chain
	// stays intact (it still backs the fallback checkpoint).
	const n = 40
	dir := writeCheckpointedLog(t, n, n, Options{})
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasCheckpoint() || r.First() != n || r.Next() != n || r.Count() != 0 {
		t.Fatalf("has=%v first=%d next=%d count=%d", r.HasCheckpoint(), r.First(), r.Next(), r.Count())
	}
	if r.Truncated() {
		t.Fatal("clean checkpoint-at-frontier reported truncated")
	}
	w, err := r.Writer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(n, payloadFor(n)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Next() != n+1 || r2.Count() != 1 {
		t.Fatalf("after continue: next=%d count=%d", r2.Next(), r2.Count())
	}
}

func TestCheckpointBeyondFrontierRejected(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(5, []byte("s")); err == nil {
		t.Fatal("checkpoint beyond the append frontier accepted")
	}
}

func TestCheckpointRetentionAndTruncation(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	ckpts := []uint64{80, 160, 240}
	ci := 0
	for age := uint64(0); age < n; age++ {
		if err := w.Append(age, payloadFor(age)); err != nil {
			t.Fatal(err)
		}
		if ci < len(ckpts) && age+1 == ckpts[ci] {
			if err := w.Checkpoint(ckpts[ci], ckptState(ckpts[ci])); err != nil {
				t.Fatal(err)
			}
			ci++
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Only the two newest checkpoints survive.
	ages, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ages) != 2 || ages[0] != 160 || ages[1] != 240 {
		t.Fatalf("retained checkpoints %v, want [160 240]", ages)
	}
	// Segments wholly below the older kept checkpoint are gone, and the
	// surviving chain still covers [<=160, 300) so the fallback
	// checkpoint at 160 remains replayable.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v err=%v", segs, err)
	}
	if segs[0].age > 160 {
		t.Fatalf("truncation cut into the fallback suffix: first segment at %d", segs[0].age)
	}
	if next := segs[1].age; len(segs) > 1 && next <= 160 {
		// segs[0] must be the newest segment wholly covering 160.
		t.Fatalf("segment below the retention floor survived: %d then %d", segs[0].age, next)
	}
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasCheckpoint() || r.CheckpointAge() != 240 || r.Next() != n {
		t.Fatalf("has=%v age=%d next=%d", r.HasCheckpoint(), r.CheckpointAge(), r.Next())
	}
	if r.Count() != n-240 {
		t.Fatalf("suffix count %d, want %d", r.Count(), n-240)
	}
}

func TestTornManifestFallsBackToCheckpointFile(t *testing.T) {
	const n, ck = 50, 30
	dir := writeCheckpointedLog(t, n, ck, Options{})
	// Corrupt the manifest: the .ckpt file itself still verifies, so
	// recovery must still find the checkpoint.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasCheckpoint() || r.CheckpointAge() != ck {
		t.Fatalf("torn manifest: has=%v age=%d, want %d", r.HasCheckpoint(), r.CheckpointAge(), ck)
	}
	if !bytes.Equal(r.CheckpointState(), ckptState(ck)) {
		t.Fatal("state mismatch after manifest loss")
	}
}

func TestTornCheckpointFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for age := uint64(0); age < n; age++ {
		if err := w.Append(age, payloadFor(age)); err != nil {
			t.Fatal(err)
		}
		if age+1 == 40 || age+1 == 80 {
			if err := w.Checkpoint(age+1, ckptState(age+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the newest checkpoint mid-file: recovery falls back to 40.
	p80 := checkpointPath(dir, 80)
	data, err := os.ReadFile(p80)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p80, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasCheckpoint() || r.CheckpointAge() != 40 {
		t.Fatalf("fallback: has=%v age=%d, want 40", r.HasCheckpoint(), r.CheckpointAge())
	}
	if !bytes.Equal(r.CheckpointState(), ckptState(40)) {
		t.Fatal("fallback state mismatch")
	}
	if r.First() != 40 || r.Next() != n || r.Count() != n-40 {
		t.Fatalf("first=%d next=%d count=%d", r.First(), r.Next(), r.Count())
	}

	// Tear both: full replay from the log alone.
	if err := os.WriteFile(checkpointPath(dir, 40), []byte("xx"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.HasCheckpoint() {
		t.Fatal("torn checkpoints still reported as valid")
	}
	checkPrefix(t, r2, 0, n)
}

func TestCheckpointNewerThanTruncatedTail(t *testing.T) {
	const n, ck = 100, 80
	dir := writeCheckpointedLog(t, n, ck, Options{SegmentBytes: 512})
	// Simulate losing the log tail after the checkpoint committed:
	// keep only the first surviving segment's first record, so the
	// chain ends strictly below the checkpoint age.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v err=%v", segs, err)
	}
	for _, s := range segs[1:] {
		if err := os.Remove(s.path); err != nil {
			t.Fatal(err)
		}
	}
	if segs[0].age+1 >= ck {
		t.Fatalf("layout: first surviving segment at %d, cannot end below checkpoint %d", segs[0].age, uint64(ck))
	}
	if err := os.Truncate(segs[0].path, recordSize(payloadFor(segs[0].age))); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasCheckpoint() || r.CheckpointAge() != ck {
		t.Fatalf("has=%v age=%d", r.HasCheckpoint(), r.CheckpointAge())
	}
	// Every surviving record is already folded into the checkpoint:
	// recovery restarts the log at the checkpoint age.
	if r.First() != ck || r.Next() != ck || r.Count() != 0 {
		t.Fatalf("first=%d next=%d count=%d, want %d %d 0", r.First(), r.Next(), r.Count(), uint64(ck), uint64(ck))
	}
	if !r.Truncated() {
		t.Fatal("lost tail not reported as truncation")
	}
	left, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("%d redundant segments survived", len(left))
	}
	// The reopened writer appends at the checkpoint age and the log
	// recovers whole afterwards.
	w, err := r.Writer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.Next() != ck {
		t.Fatalf("reopened next=%d, want %d", w.Next(), ck)
	}
	if err := w.Append(ck, payloadFor(ck)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.First() != ck || r2.Next() != ck+1 || r2.Count() != 1 {
		t.Fatalf("after continue: first=%d next=%d count=%d", r2.First(), r2.Next(), r2.Count())
	}
}

func TestCheckpointGapBelowSegments(t *testing.T) {
	// Checkpoint older than the first surviving segment (the operator
	// deleted early segments by hand, or truncation raced a crash):
	// the suffix cannot attach to the checkpoint, so only the
	// checkpoint state stands.
	const n, ck = 100, 20
	dir := writeCheckpointedLog(t, n, ck, Options{SegmentBytes: 512})
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want several segments (err=%v n=%d)", err, len(segs))
	}
	// Remove the earliest segments so the first surviving one starts
	// above the checkpoint age.
	for _, s := range segs {
		if s.age <= ck+10 {
			if err := os.Remove(s.path); err != nil {
				t.Fatal(err)
			}
		}
	}
	left, _ := listSegments(dir)
	if len(left) == 0 || left[0].age <= ck {
		t.Skipf("segment layout did not produce a gap (first %v)", left)
	}
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasCheckpoint() || r.First() != ck || r.Next() != ck || r.Count() != 0 {
		t.Fatalf("has=%v first=%d next=%d count=%d, want state-only at %d",
			r.HasCheckpoint(), r.First(), r.Next(), r.Count(), ck)
	}
	if !r.Truncated() {
		t.Fatal("gap not reported as truncation")
	}
}

func TestAdaptivePolicyMakesProgress(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{Adaptive: true, AdaptiveBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for age := uint64(0); age < n; age++ {
		if err := w.Append(age, payloadFor(age)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for w.Durable() < n {
		if time.Now().After(deadline) {
			t.Fatalf("adaptive syncer stalled at durable=%d", w.Durable())
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, r, 0, n)
}

func TestPipelinedSyncOverlap(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0, Options{SyncEveryN: 4, MaxInFlightSyncs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if err := w.Sync(); err != nil {
						return
					}
				}
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	age := uint64(0)
	for w.SyncDepthMax() < 2 && time.Now().Before(deadline) {
		if err := w.Append(age, payloadFor(age)); err != nil {
			t.Fatal(err)
		}
		age++
	}
	close(stop)
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.SyncDepthMax() < 2 {
		t.Fatalf("no sync overlap observed (depth max %d)", w.SyncDepthMax())
	}
	if w.OverlappedSyncs() == 0 {
		t.Fatal("OverlappedSyncs = 0 despite depth > 1")
	}
	// Whatever the overlap did, the recovered log must be the exact
	// contiguous prefix.
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, r, 0, age)
}

// FuzzTornCheckpoint cuts the newest checkpoint file at arbitrary
// offsets: recovery must either load it whole or fall back to full
// replay — never error, never lose log records.
func FuzzTornCheckpoint(f *testing.F) {
	const n, ck = 30, 20
	src := f.TempDir()
	w, err := Create(src, 0, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for age := uint64(0); age < n; age++ {
		if err := w.Append(age, payloadFor(age)); err != nil {
			f.Fatal(err)
		}
		if age+1 == ck {
			if err := w.Checkpoint(ck, ckptState(ck)); err != nil {
				f.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	ckData, err := os.ReadFile(checkpointPath(src, ck))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint16(0))
	f.Add(uint16(len(ckData) / 2))
	f.Add(uint16(len(ckData)))
	f.Fuzz(func(t *testing.T, cut16 uint16) {
		cut := int(cut16) % (len(ckData) + 1)
		dir := copyDir(t, src)
		if err := os.WriteFile(checkpointPath(dir, ck), ckData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		if cut == len(ckData) {
			if !r.HasCheckpoint() || r.CheckpointAge() != ck {
				t.Fatalf("intact checkpoint not used (cut=%d)", cut)
			}
			if r.First() != ck || r.Next() != n || r.Count() != n-ck {
				t.Fatalf("suffix wrong: first=%d next=%d count=%d", r.First(), r.Next(), r.Count())
			}
		} else {
			if r.HasCheckpoint() {
				t.Fatalf("torn checkpoint (cut=%d) reported valid", cut)
			}
			checkPrefix(t, r, 0, n)
		}
	})
}
