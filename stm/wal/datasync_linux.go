//go:build linux

package wal

import "syscall"

// Fdatasync flushes a segment's appended records to stable storage.
// fdatasync is sufficient — and measurably cheaper than fsync — for a
// pure append stream: POSIX requires it to flush any metadata needed
// to retrieve the written data (the file-size extension), and the only
// metadata it may skip is timestamps, which recovery never reads.
func (f osFile) Fdatasync() error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}
