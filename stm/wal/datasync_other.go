//go:build !linux

package wal

// Fdatasync falls back to a full fsync where fdatasync is not exposed.
func (f osFile) Fdatasync() error { return f.Sync() }
