//go:build !linux

package wal

import "os"

// datasync falls back to a full fsync where fdatasync is not exposed.
func datasync(f *os.File) error { return f.Sync() }
