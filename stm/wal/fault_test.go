package wal_test

// Fault-injection coverage for the durable path: every test drives a
// real Writer over internal/faultfs and asserts the failure-model
// contract — transient errors are retried away, terminal errors
// either kill (FailStop) or detach (Degrade) the log, and recovery
// after any of it yields exactly the durable prefix, never more than
// the writer acknowledged.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/orderedstm/ostm/internal/faultfs"
	"github.com/orderedstm/ostm/stm/wal"
)

func pay(age uint64) []byte {
	p := make([]byte, int(age%53)+1)
	for i := range p {
		p[i] = byte(age + uint64(i)*11)
	}
	return p
}

// appendN appends ages [0, n) and returns the first append error.
func appendN(w *wal.Writer, n uint64) error {
	for age := uint64(0); age < n; age++ {
		if err := w.Append(age, pay(age)); err != nil {
			return err
		}
	}
	return nil
}

func checkRecovered(t *testing.T, dir string, wantNextAtLeast uint64) *wal.Recovery {
	t.Helper()
	r, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range r.Records() {
		want := r.First() + uint64(i)
		if rec.Age != want || !bytes.Equal(rec.Payload, pay(want)) {
			t.Fatalf("recovered record %d: age=%d, want contiguous age %d with matching payload", i, rec.Age, want)
		}
	}
	if r.Next() < wantNextAtLeast {
		t.Fatalf("recovered next=%d, want at least %d (acknowledged-durable prefix lost)", r.Next(), wantNextAtLeast)
	}
	return r
}

func TestTransientWriteErrorRetried(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil,
		faultfs.Plan{Op: faultfs.OpWrite, N: 1, Err: syscall.EIO, Count: 1},
	)
	w, err := wal.Create(dir, 0, wal.Options{
		FS:    fs,
		Retry: wal.RetryPolicy{Max: 3, Backoff: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := appendN(w, 100); err != nil {
		t.Fatalf("append through a transient write error: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Retries() == 0 || w.IOErrors() == 0 {
		t.Fatalf("retries=%d ioErrors=%d, want both > 0", w.Retries(), w.IOErrors())
	}
	if w.Durable() != 100 {
		t.Fatalf("durable=%d, want 100", w.Durable())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := checkRecovered(t, dir, 100)
	if r.Truncated() {
		t.Fatal("retried-away transient error left a torn log")
	}
}

func TestTransientShortWriteRetried(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil,
		faultfs.Plan{Op: faultfs.OpWrite, N: 1, Err: syscall.EIO, Short: true, Count: 1},
	)
	w, err := wal.Create(dir, 0, wal.Options{
		FS:    fs,
		Retry: wal.RetryPolicy{Max: 2, Backoff: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := appendN(w, 50); err != nil {
		t.Fatalf("append through a transient short write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.Injected() == 0 {
		t.Fatal("short-write plan never fired")
	}
	// The retry must have resumed exactly where the short write
	// stopped: all 50 records intact.
	r := checkRecovered(t, dir, 50)
	if r.Truncated() || r.Count() != 50 {
		t.Fatalf("truncated=%v count=%d, want intact 50-record log", r.Truncated(), r.Count())
	}
}

func TestPersistentSyncErrorFailStop(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil,
		faultfs.Plan{Op: faultfs.OpSync, N: 1, Err: syscall.EIO, Count: -1},
	)
	w, err := wal.Create(dir, 0, wal.Options{
		FS:    fs,
		Retry: wal.RetryPolicy{Max: 1, Backoff: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var notified error
	w.Notify(func(next uint64, err error) {
		mu.Lock()
		if err != nil && notified == nil {
			notified = err
		}
		mu.Unlock()
	})
	if err := appendN(w, 10); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Sync = %v, want EIO", err)
	}
	if w.Durable() != 0 {
		t.Fatalf("durable advanced to %d past a failed sync", w.Durable())
	}
	// The log is dead: appends and syncs keep failing with the cause.
	if err := w.Append(10, pay(10)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Append after fail-stop = %v, want EIO", err)
	}
	mu.Lock()
	if !errors.Is(notified, syscall.EIO) {
		t.Fatalf("observer notified %v, want EIO", notified)
	}
	mu.Unlock()
	if w.Degraded() {
		t.Fatal("FailStop must not report degraded")
	}
	if err := w.Close(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Close = %v, want EIO", err)
	}
	// Nothing was acknowledged durable, so any recovered prefix is
	// consistent; it must still parse cleanly.
	checkRecovered(t, dir, 0)
}

func TestPersistentSyncErrorDegrade(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil,
		faultfs.Plan{Op: faultfs.OpSync, N: 2, Err: syscall.EIO, Count: -1},
	)
	w, err := wal.Create(dir, 0, wal.Options{
		FS:     fs,
		OnFail: wal.Degrade,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := appendN(w, 10); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil { // first sync succeeds (plan fires at #2)
		t.Fatal(err)
	}
	if w.Durable() != 10 {
		t.Fatalf("durable=%d, want 10", w.Durable())
	}
	for age := uint64(10); age < 20; age++ {
		if err := w.Append(age, pay(age)); err != nil {
			if !errors.Is(err, wal.ErrDegraded) {
				t.Fatalf("Append during degrade = %v, want ErrDegraded", err)
			}
			break
		}
	}
	if err := w.Sync(); !errors.Is(err, wal.ErrDegraded) {
		t.Fatalf("Sync after degrade = %v, want ErrDegraded", err)
	}
	if !w.Degraded() {
		t.Fatal("Degraded() = false after a terminal sync failure under OnFail=Degrade")
	}
	if err := w.Close(); !errors.Is(err, wal.ErrDegraded) {
		t.Fatalf("Close = %v, want ErrDegraded", err)
	}
	// The acknowledged prefix — ages [0,10), durable before the fault
	// — must survive recovery byte for byte.
	checkRecovered(t, dir, 10)
}

func TestENOSPCDuringSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil,
		// Open #1 is the initial segment; #2 is the roll.
		faultfs.Plan{Op: faultfs.OpOpen, N: 2, Err: syscall.ENOSPC, Count: -1},
	)
	w, err := wal.Create(dir, 0, wal.Options{
		FS:           fs,
		SegmentBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	var appended uint64
	var rollErr error
	for age := uint64(0); age < 200; age++ {
		if rollErr = w.Append(age, pay(age)); rollErr != nil {
			break
		}
		appended = age + 1
	}
	if !errors.Is(rollErr, syscall.ENOSPC) {
		t.Fatalf("append across a full-disk roll = %v, want ENOSPC", rollErr)
	}
	if err := w.Sync(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Sync after failed roll = %v, want ENOSPC", err)
	}
	w.Close()
	// Everything appended before the roll is in the first segment and
	// must recover; the failed roll lost nothing acknowledged.
	r := checkRecovered(t, dir, 0)
	if r.Next() != appended {
		t.Fatalf("recovered next=%d, want %d (records accepted before ENOSPC)", r.Next(), appended)
	}
}

func TestFailedCheckpointRenameKeepsPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil,
		faultfs.Plan{Op: faultfs.OpRename, N: 1, Err: syscall.EIO, Count: -1, Path: "CHECKPOINT"},
	)
	w, err := wal.Create(dir, 0, wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := appendN(w, 20); err != nil {
		t.Fatal(err)
	}
	// First checkpoint: snapshot file renames fine, manifest rename
	// fails — the checkpoint must not be committed.
	if err := w.Checkpoint(10, []byte("state@10")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Checkpoint with failing manifest rename = %v, want EIO", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := checkRecovered(t, dir, 20)
	// The manifest never committed, but the snapshot file itself is
	// valid on disk — recovery may legitimately use it (manifest is a
	// hint, not an authority). What it must never do is trip over the
	// orphan temp manifest.
	if r.HasCheckpoint() && !bytes.Equal(r.CheckpointState(), []byte("state@10")) {
		t.Fatalf("recovery picked a checkpoint with the wrong state %q", r.CheckpointState())
	}
	if r.Next() != 20 {
		t.Fatalf("recovered next=%d, want 20", r.Next())
	}
}

func TestFailedCheckpointFileRenameKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil,
		faultfs.Plan{Op: faultfs.OpRename, N: 2, Err: syscall.EIO, Count: -1, Path: ".ckpt"},
	)
	w, err := wal.Create(dir, 0, wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := appendN(w, 30); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(10, []byte("state@10")); err != nil {
		t.Fatal(err)
	}
	// Second checkpoint's snapshot rename fails: the previous
	// checkpoint must remain committed and recovery must use it.
	if err := w.Checkpoint(20, []byte("state@20")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Checkpoint with failing snapshot rename = %v, want EIO", err)
	}
	if w.CheckpointAge() != 10 {
		t.Fatalf("CheckpointAge=%d after failed checkpoint, want 10", w.CheckpointAge())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasCheckpoint() || r.CheckpointAge() != 10 || !bytes.Equal(r.CheckpointState(), []byte("state@10")) {
		t.Fatalf("recovery: hasCkpt=%v age=%d state=%q, want the previous checkpoint (age 10)",
			r.HasCheckpoint(), r.CheckpointAge(), r.CheckpointState())
	}
	if r.Next() != 30 {
		t.Fatalf("recovered next=%d, want 30", r.Next())
	}
}

func TestRecoveryIgnoresOrphanTempFiles(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Create(dir, 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := appendN(w, 15); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(10, []byte("state@10")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Orphans a crashed/failed atomic write would leave behind.
	for _, name := range []string{"CHECKPOINT.tmp", fmt.Sprintf("%016x.ckpt.tmp", 14)} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasCheckpoint() || r.CheckpointAge() != 10 {
		t.Fatalf("hasCkpt=%v age=%d, want committed checkpoint at 10", r.HasCheckpoint(), r.CheckpointAge())
	}
	if r.Next() != 15 || r.Truncated() {
		t.Fatalf("next=%d truncated=%v, want 15/false — orphan temps must be invisible", r.Next(), r.Truncated())
	}
}

func TestExhaustedShortWriteLeavesRecoverableTornTail(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil,
		faultfs.Plan{Op: faultfs.OpWrite, N: 3, Err: syscall.EIO, Short: true, Count: -1},
	)
	w, err := wal.Create(dir, 0, wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	var accepted uint64
	for age := uint64(0); age < 100; age++ {
		if err := w.Append(age, pay(age)); err != nil {
			break
		}
		accepted = age + 1
		if err := w.Sync(); err != nil {
			break
		}
	}
	w.Close()
	// The torn half-record the short write left must be cut; the
	// prefix below the last successful sync must survive.
	r := checkRecovered(t, dir, 0)
	if r.Next() > accepted {
		t.Fatalf("recovery claims %d records, writer only accepted %d", r.Next(), accepted)
	}
}
