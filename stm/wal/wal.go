// Package wal is the durability subsystem of the ordered-commit
// pipeline: a segmented append-only log of committed transaction
// inputs, a pipelined group-commit syncer, a checkpoint writer, and a
// crash-recovery driver.
//
// The predefined commit order makes durability almost free to specify.
// Because every execution commits transactions in exactly the
// predefined age order, and bodies are deterministic functions of
// (age, memory), the sequence of committed input payloads *is* the
// state: replaying any prefix of the log through any order-enforcing
// engine reproduces, bit for bit, the memory a sequential execution of
// that prefix would leave. The log therefore stores inputs — the
// encoded submission payloads handed to stm.Codec — never memory
// snapshots, the same property queue-oriented deterministic systems
// (QueCC, Calvin) and replicated state machines build on.
//
// # Log structure
//
// A log is a directory of segment files named by the age of their
// first record (`%016x.wal`). Records are CRC-framed:
//
//	u32 payload length | u32 CRC-32C | u64 age | payload
//
// Ages are contiguous across the whole log: segment N+1 starts at the
// age one past segment N's last record. The Writer appends records
// strictly in age order and rolls to a new segment once the current
// one exceeds Options.SegmentBytes.
//
// # Pipelined group commit
//
// Append only copies the record into the current segment's buffer; an
// fsync makes everything appended so far durable at once. Sync points
// are *pipelined*: admission (flushing the buffer and snapshotting the
// group's target frontier) is decoupled from the fsync itself, so the
// next sync group is admitted while the previous fsync is still on the
// wire — up to Options.MaxInFlightSyncs groups overlap. Completions
// are processed strictly in admission order, so the durability
// frontier only ever moves forward and observers see sync points in
// age order no matter how the device reorders the fsyncs themselves.
//
// The sync policy decides when groups are admitted: after every N
// appends (Options.SyncEveryN), at least every interval while dirty
// (Options.SyncInterval), adaptively (Options.Adaptive: immediately
// while the device is idle, growing toward a byte target while syncs
// are in flight), or only on explicit Sync/Close (none of the above —
// policy "none", the right choice when a layer above already decides
// durability points). Count and adaptive policies also admit pending
// records as soon as a sync slot frees (admit-on-drain), so a partial
// group never waits for traffic that may not come, and an idle-flush
// timer bounds the stalled-tail latency either way. Durability is
// tracked as a frontier: every age below Writer.Durable is on stable
// storage.
//
// # Checkpoints
//
// Writer.Checkpoint durably records an application state snapshot at a
// frontier age: the snapshot is written to a `%016x.ckpt` file, made
// durable, and then committed by an atomic rename of the CHECKPOINT
// manifest — a crash anywhere in between leaves the previous
// checkpoint in force. The two newest checkpoints are retained and
// segments wholly below the older one are truncated, bounding both
// disk usage and recovery time by the checkpoint interval while
// keeping a fallback if the newest checkpoint file is torn.
//
// # Torn tails and recovery
//
// A crash can leave a torn tail: a partially written final record, or
// garbage past the last fsync. Recover scans the segments in age
// order and stops at the first record that is short, fails its CRC,
// or carries an unexpected age; the log is truncated at that record's
// start and any later segments are deleted. Everything before the cut
// is a consistent prefix of the committed order — exactly the durable
// state. When a valid checkpoint exists, recovery loads its state and
// keeps only the record suffix at or above the checkpoint age (torn
// or unreadable checkpoints fall back to the previous checkpoint, or
// to full replay). Replay then feeds the surviving payloads, in age
// order, to a submit function (typically Pipeline.SubmitEncoded), and
// the writer reopened from the recovery accepts new appends where the
// prefix ends. Re-appends of already-recovered ages are ignored, so a
// replay that flows through a WAL-attached pipeline is idempotent.
package wal

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"github.com/orderedstm/ostm/stm/obs"
)

// ErrDegraded is the sentinel a degraded log reports (see
// FailPolicy): after an unrecoverable I/O failure under
// OnFail=Degrade the writer detaches at a clean record boundary and
// every durability-path call — Append, Sync, WaitDurable tickets via
// stm.DurabilityError — fails fast with an error matching ErrDegraded
// (errors.Is), while the engine above keeps committing volatile.
var ErrDegraded = errors.New("wal: log degraded, durability detached")

// RetryPolicy bounds how the writer retries transient I/O failures
// (segment writes, fdatasync, directory syncs, segment opens) before
// declaring the failure terminal and applying the FailPolicy.
type RetryPolicy struct {
	// Max is how many times a failed operation is retried (0, the
	// default, fails on the first error).
	Max int
	// Backoff is the delay before the first retry, doubling per
	// attempt (default 1ms when Max > 0).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 50ms).
	MaxBackoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Max > 0 {
		if p.Backoff <= 0 {
			p.Backoff = time.Millisecond
		}
		if p.MaxBackoff <= 0 {
			p.MaxBackoff = 50 * time.Millisecond
		}
	}
	return p
}

// FailPolicy selects what a terminal (retries exhausted) I/O failure
// does to the log.
type FailPolicy int

const (
	// FailStop latches the error: every subsequent Append/Sync/Close
	// returns it, and the durability observer is notified so parked
	// WaitDurable tickets fail instead of hanging. The durable prefix
	// — everything below the last completed sync point — stands.
	FailStop FailPolicy = iota
	// Degrade detaches the log instead of killing it: buffered
	// records (always whole frames) are dropped at a clean record
	// boundary, the wal_degraded gauge flips, and the durability path
	// fails fast with ErrDegraded — while the engine above keeps
	// committing volatile. Use it when availability under a sick disk
	// matters more than durability of new commits.
	Degrade
)

func (p FailPolicy) String() string {
	switch p {
	case FailStop:
		return "failstop"
	case Degrade:
		return "degrade"
	default:
		return fmt.Sprintf("FailPolicy(%d)", int(p))
	}
}

// Options parameterizes a Writer.
type Options struct {
	// SyncEveryN admits a sync group after every N appended records
	// (group commit: one fsync covers the whole batch). Zero disables
	// count-based syncing. Pending records are also admitted as soon
	// as a sync slot is free (admit-on-drain), an append that finds
	// the sync device idle admits immediately, and an idle delay of a
	// few ms bounds how long a stalled stream's tail can wait, so N is
	// the group-size target under load, not a latency floor.
	SyncEveryN int
	// SyncInterval bounds how long an appended record may stay
	// un-synced: a background syncer admits a group whenever the log
	// has been dirty for this long. Zero disables time-based syncing.
	SyncInterval time.Duration
	// Adaptive enables adaptive group sizing: while the sync device is
	// idle, pending records are admitted immediately (smallest groups,
	// lowest latency); while syncs are in flight, the group grows
	// until it reaches AdaptiveBytes or a sync slot frees, whichever
	// comes first — the group size tracks the device's own latency.
	// Mutually exclusive with SyncEveryN.
	Adaptive bool
	// AdaptiveBytes is the byte target an adaptive group grows toward
	// while syncs are in flight (default 256 KiB).
	AdaptiveBytes int
	// MaxInFlightSyncs bounds how many admitted sync groups may be on
	// the wire at once (default 2). 1 recovers the serial group-commit
	// behavior; 2+ overlaps the next group's admission with the
	// previous fsync.
	MaxInFlightSyncs int
	// SegmentBytes caps a segment file's size; the writer rolls to a
	// fresh segment before the record that would exceed it (default
	// 64 MiB). The finished segment is fsynced and closed at the next
	// sync point, off the append path.
	SegmentBytes int64
	// FS, when non-nil, routes every write-side filesystem operation
	// through the given implementation (fault injection, testing).
	// nil means OS: the real filesystem with no added cost.
	FS FS
	// Retry bounds retries of transient I/O failures before the
	// failure is terminal. The zero value never retries.
	Retry RetryPolicy
	// OnFail selects what a terminal I/O failure does to the log:
	// FailStop (default) latches the error, Degrade detaches
	// durability and keeps the engine above available. See
	// FailPolicy.
	OnFail FailPolicy
	// Obs, when non-nil, attaches the observability registry: the
	// writer registers its metric families (fsync latency and count,
	// group size, sync-pipeline depth, appended/durable age, bytes,
	// checkpoints) and records into them as it runs. nil (the default)
	// means zero overhead: no instrument is ever touched on any path.
	Obs *obs.Registry
}

// validate rejects nonsensical options at open time instead of
// silently treating them as unset.
func (o Options) validate() error {
	if o.SyncEveryN < 0 {
		return fmt.Errorf("wal: negative SyncEveryN %d", o.SyncEveryN)
	}
	if o.SyncInterval < 0 {
		return fmt.Errorf("wal: negative SyncInterval %v", o.SyncInterval)
	}
	if o.AdaptiveBytes < 0 {
		return fmt.Errorf("wal: negative AdaptiveBytes %d", o.AdaptiveBytes)
	}
	if o.MaxInFlightSyncs < 0 {
		return fmt.Errorf("wal: negative MaxInFlightSyncs %d", o.MaxInFlightSyncs)
	}
	if o.SegmentBytes < 0 {
		return fmt.Errorf("wal: negative SegmentBytes %d", o.SegmentBytes)
	}
	if o.Adaptive && o.SyncEveryN > 0 {
		return errors.New("wal: Adaptive and SyncEveryN are mutually exclusive group-size policies")
	}
	if o.Retry.Max < 0 {
		return fmt.Errorf("wal: negative Retry.Max %d", o.Retry.Max)
	}
	if o.Retry.Backoff < 0 {
		return fmt.Errorf("wal: negative Retry.Backoff %v", o.Retry.Backoff)
	}
	if o.Retry.MaxBackoff < 0 {
		return fmt.Errorf("wal: negative Retry.MaxBackoff %v", o.Retry.MaxBackoff)
	}
	if o.OnFail != FailStop && o.OnFail != Degrade {
		return fmt.Errorf("wal: unknown OnFail policy %d", int(o.OnFail))
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.MaxInFlightSyncs <= 0 {
		o.MaxInFlightSyncs = 2
	}
	if o.Adaptive && o.AdaptiveBytes <= 0 {
		o.AdaptiveBytes = 256 << 10
	}
	if o.FS == nil {
		o.FS = OS
	}
	o.Retry = o.Retry.withDefaults()
	return o
}

// policy returns the human-readable sync policy name ("none",
// "every=N", "interval=D", "adaptive(bytes=B,depth=D)", with
// interval-combined forms joined by "+").
func (o Options) policy() string {
	if o.Adaptive {
		s := "adaptive(bytes=" + strconv.Itoa(o.AdaptiveBytes) +
			",depth=" + strconv.Itoa(o.MaxInFlightSyncs) + ")"
		if o.SyncInterval > 0 {
			s += "+interval=" + o.SyncInterval.String()
		}
		return s
	}
	switch {
	case o.SyncEveryN > 0 && o.SyncInterval > 0:
		return "every=" + strconv.Itoa(o.SyncEveryN) + "+interval=" + o.SyncInterval.String()
	case o.SyncEveryN > 0:
		return "every=" + strconv.Itoa(o.SyncEveryN)
	case o.SyncInterval > 0:
		return "interval=" + o.SyncInterval.String()
	default:
		return "none"
	}
}
