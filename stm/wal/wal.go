// Package wal is the durability subsystem of the ordered-commit
// pipeline: a segmented append-only log of committed transaction
// inputs, a group-commit syncer, and a crash-recovery driver.
//
// The predefined commit order makes durability almost free to specify.
// Because every execution commits transactions in exactly the
// predefined age order, and bodies are deterministic functions of
// (age, memory), the sequence of committed input payloads *is* the
// state: replaying any prefix of the log through any order-enforcing
// engine reproduces, bit for bit, the memory a sequential execution of
// that prefix would leave. The log therefore stores inputs — the
// encoded submission payloads handed to stm.Codec — never memory
// snapshots, the same property queue-oriented deterministic systems
// (QueCC, Calvin) and replicated state machines build on.
//
// # Log structure
//
// A log is a directory of segment files named by the age of their
// first record (`%016x.wal`). Records are CRC-framed:
//
//	u32 payload length | u32 CRC-32C | u64 age | payload
//
// Ages are contiguous across the whole log: segment N+1 starts at the
// age one past segment N's last record. The Writer appends records
// strictly in age order and rolls to a new segment once the current
// one exceeds Options.SegmentBytes.
//
// # Group commit
//
// Append only copies the record into the current segment's buffer; an
// fsync makes everything appended so far durable at once. The sync
// policy decides when that happens: after every N appends
// (Options.SyncEveryN), at least every interval while dirty
// (Options.SyncInterval), or only on explicit Sync/Close (neither set
// — policy "none", the right choice when a layer above already
// decides durability points, and for measuring the pure logging
// overhead). Durability is tracked as a frontier: every age below
// Writer.Durable is on stable storage.
//
// # Torn tails and recovery
//
// A crash can leave a torn tail: a partially written final record, or
// garbage past the last fsync. Recover scans the segments in age
// order and stops at the first record that is short, fails its CRC,
// or carries an unexpected age; the log is truncated at that record's
// start and any later segments are deleted. Everything before the cut
// is a consistent prefix of the committed order — exactly the durable
// state. Replay then feeds the surviving payloads, in age order, to a
// submit function (typically Pipeline.SubmitEncoded), and the writer
// reopened from the recovery accepts new appends where the prefix
// ends. Re-appends of already-recovered ages are ignored, so a replay
// that flows through a WAL-attached pipeline is idempotent.
package wal

import (
	"strconv"
	"time"
)

// Options parameterizes a Writer.
type Options struct {
	// SyncEveryN forces an fsync after every N appended records
	// (group commit: one fsync covers the whole batch). Zero disables
	// count-based syncing. To keep a stalled stream's tail from
	// waiting forever for the batch to fill, a count-only policy also
	// flushes dirty records after a short idle delay (a few ms).
	SyncEveryN int
	// SyncInterval bounds how long an appended record may stay
	// un-synced: a background syncer fsyncs whenever the log has been
	// dirty for this long. Zero disables time-based syncing.
	SyncInterval time.Duration
	// SegmentBytes caps a segment file's size; the writer rolls to a
	// fresh segment before the record that would exceed it (default
	// 64 MiB). The finished segment is fsynced and closed at the next
	// sync point, off the append path.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// policy returns the human-readable sync policy name ("none",
// "every=N", "interval=D", or both joined by "+").
func (o Options) policy() string {
	switch {
	case o.SyncEveryN > 0 && o.SyncInterval > 0:
		return "every=" + strconv.Itoa(o.SyncEveryN) + "+interval=" + o.SyncInterval.String()
	case o.SyncEveryN > 0:
		return "every=" + strconv.Itoa(o.SyncEveryN)
	case o.SyncInterval > 0:
		return "interval=" + o.SyncInterval.String()
	default:
		return "none"
	}
}
