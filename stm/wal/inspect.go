package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
)

// This file is the log's public inspection surface: segment and
// checkpoint listings, the exported record-frame checksum, and a
// CRC-verified cursor over the durable record stream. Shippers
// (stm/repl), backup tooling and debugging commands read the log
// through these instead of re-parsing directory names or record
// frames themselves, so the naming scheme and framing stay private
// implementation details with one owner.

// SegmentInfo describes one on-disk segment file.
type SegmentInfo struct {
	// FirstAge is the age of the segment's first record (the name
	// encodes it: %016x.wal).
	FirstAge uint64
	// Path is the segment file's full path.
	Path string
	// Size is the file's current size in bytes. For the tail segment
	// of a live log this is a snapshot: the writer may be appending.
	Size int64
}

// Segments lists dir's segment files in age order. Files that do not
// match the segment naming scheme are ignored; a missing directory
// yields an empty listing. On a live log the tail segment's Size is a
// point-in-time snapshot.
func Segments(dir string) ([]SegmentInfo, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	out := make([]SegmentInfo, 0, len(segs))
	for _, s := range segs {
		st, err := os.Stat(s.path)
		if err != nil {
			return nil, err
		}
		out = append(out, SegmentInfo{FirstAge: s.age, Path: s.path, Size: st.Size()})
	}
	return out, nil
}

// Checkpoints lists the ages of dir's checkpoint snapshot files,
// sorted ascending. The committed checkpoint (the manifest's, when it
// verifies) is typically the last; use ReadCheckpoint to load one.
func Checkpoints(dir string) ([]uint64, error) {
	return listCheckpoints(dir)
}

// ReadCheckpoint loads and verifies the checkpoint snapshot at age
// from dir, returning its application state. A torn or missing
// snapshot is an error (recovery's fallback-to-older policy lives in
// Recover; this is the raw accessor).
func ReadCheckpoint(dir string, age uint64) ([]byte, error) {
	return readCheckpointFile(checkpointPath(dir, age), age)
}

// RecordCRC returns the CRC-32C the log's record frame stores for
// (age, payload) — covering the length and age fields as well as the
// payload, exactly the torn-tail rule's checksum. Shippers reuse it
// so a byte shipped off-box is validated by the same rule that
// validates it on disk.
func RecordCRC(age uint64, payload []byte) uint32 {
	return recordCRC(uint32(len(payload)), age, payload)
}

// FrameSize returns the framed on-disk size of a record payload
// (header + payload bytes).
func FrameSize(payload []byte) int64 { return recordSize(payload) }

// ErrCompacted is returned by NewCursor and Cursor.Next when the
// requested age is below the log's oldest retained record — a
// checkpoint truncated the history. The reader must restart from a
// checkpoint at or above the requested age instead.
var ErrCompacted = errors.New("wal: records compacted below the requested age")

// Cursor reads CRC-verified records from a log directory in age
// order, starting at a chosen age, tolerating a live Writer appending
// ahead of it. Next never reads at or past the caller-supplied limit
// (pass Writer.Durable() to observe only bytes a crash cannot take
// back), which is also what makes reading the live tail safe: every
// byte below the durability frontier was fully written to the segment
// file before the frontier advanced.
//
// A Cursor is not safe for concurrent use. It holds at most one open
// segment file; Close releases it.
type Cursor struct {
	dir    string
	expect uint64 // age of the next record to return
	f      *os.File
	br     *bufio.Reader
	opened uint64 // segment files opened over the cursor's life
}

// NewCursor positions a cursor at age from in dir's log. The first
// Next returns the record at exactly from; ErrCompacted if the log no
// longer retains it.
func NewCursor(dir string, from uint64) (*Cursor, error) {
	c := &Cursor{dir: dir, expect: from}
	return c, nil
}

// Segments returns how many segment files the cursor has opened —
// the shipped-segment count for a shipper driving it.
func (c *Cursor) Segments() uint64 { return c.opened }

// Next returns the next record if its age is below limit, or
// ok=false when the cursor has caught up (the next record is at or
// beyond limit). The returned payload is freshly allocated and owned
// by the caller. Errors are genuine log corruption or I/O failures —
// a record below the durability frontier that fails its CRC is not a
// torn tail, it is a damaged log — or ErrCompacted when the log was
// truncated under the cursor.
func (c *Cursor) Next(limit uint64) (age uint64, payload []byte, ok bool, err error) {
	for {
		if c.expect >= limit {
			return 0, nil, false, nil
		}
		if c.f == nil {
			if err := c.open(); err != nil {
				return 0, nil, false, err
			}
		}
		// The record for c.expect is fully on disk (it is below the
		// caller's durability limit), so a clean EOF here can only mean
		// the segment ended at a roll boundary: move to the next file.
		a, p, rerr := readRecord(c.br, int64(maxPayload)+headerSize)
		if rerr == io.EOF {
			c.closeFile()
			continue
		}
		if rerr != nil {
			return 0, nil, false, fmt.Errorf("wal: cursor at age %d: %w", c.expect, rerr)
		}
		if a != c.expect {
			return 0, nil, false, fmt.Errorf("wal: cursor expected age %d, segment holds %d", c.expect, a)
		}
		c.expect = a + 1
		return a, p, true, nil
	}
}

// open locates and opens the segment containing c.expect, skipping
// already-consumed records within it.
func (c *Cursor) open() error {
	segs, err := listSegments(c.dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 || segs[0].age > c.expect {
		return fmt.Errorf("%w (want %d)", ErrCompacted, c.expect)
	}
	idx := 0
	for i, s := range segs {
		if s.age > c.expect {
			break
		}
		idx = i
	}
	f, err := os.Open(segs[idx].path)
	if err != nil {
		return err
	}
	c.f = f
	c.br = bufio.NewReaderSize(f, 1<<20)
	c.opened++
	// Skip records below the resume point (a cursor restarted mid-
	// segment, or positioned at an age inside an existing segment).
	for at := segs[idx].age; at < c.expect; at++ {
		a, _, rerr := readRecord(c.br, int64(maxPayload)+headerSize)
		if rerr != nil {
			c.closeFile()
			return fmt.Errorf("wal: cursor skipping to age %d: %v", c.expect, rerr)
		}
		if a != at {
			c.closeFile()
			return fmt.Errorf("wal: cursor skipping to age %d: segment holds %d at %d", c.expect, a, at)
		}
	}
	return nil
}

func (c *Cursor) closeFile() {
	if c.f != nil {
		c.f.Close()
		c.f, c.br = nil, nil
	}
}

// Close releases the cursor's open segment file, if any.
func (c *Cursor) Close() { c.closeFile() }
