package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// copyDir clones a log directory so each truncation experiment works
// on its own copy.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestTornTailEveryOffset is the torn-tail fuzz: a log is cut at every
// byte offset inside its final record — simulating a crash at any
// point of the write — and recovery must always yield exactly the
// prefix without that record, still replayable, still appendable.
func TestTornTailEveryOffset(t *testing.T) {
	const n = 12
	src := t.TempDir()
	writeLog(t, src, 0, n, Options{})
	segs, err := listSegments(src)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want a single segment (err=%v, n=%d)", err, len(segs))
	}
	full, err := os.Stat(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := recordSize(payloadFor(n - 1))
	lastStart := full.Size() - lastLen

	for cut := lastStart; cut < full.Size(); cut++ {
		dir := copyDir(t, src)
		seg := filepath.Join(dir, filepath.Base(segs[0].path))
		if err := os.Truncate(seg, cut); err != nil {
			t.Fatal(err)
		}
		r, err := Recover(dir)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		// A cut exactly at the record boundary leaves a clean shorter
		// log; any cut inside the record must be detected as torn.
		if cut > lastStart && !r.Truncated() {
			t.Fatalf("cut=%d: truncation not detected", cut)
		}
		checkPrefix(t, r, 0, n-1)
		// The truncated log must accept the record again and recover
		// whole afterwards.
		w, err := r.Writer(Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if err := w.Append(n-1, payloadFor(n-1)); err != nil {
			t.Fatalf("cut=%d: re-append: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		r2, err := Recover(dir)
		if err != nil {
			t.Fatalf("cut=%d: re-recover: %v", cut, err)
		}
		checkPrefix(t, r2, 0, n)
	}
}

// TestTornTailBitFlips corrupts single bytes of the final record in
// place (a torn sector rather than a short write) and asserts the
// torn-tail rule still cuts exactly there.
func TestTornTailBitFlips(t *testing.T) {
	const n = 10
	src := t.TempDir()
	writeLog(t, src, 0, n, Options{})
	segs, _ := listSegments(src)
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := recordSize(payloadFor(n - 1))
	lastStart := int64(len(data)) - lastLen

	for off := lastStart; off < int64(len(data)); off++ {
		dir := copyDir(t, src)
		seg := filepath.Join(dir, filepath.Base(segs[0].path))
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		if err := os.WriteFile(seg, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Recover(dir)
		if err != nil {
			t.Fatalf("off=%d: %v", off, err)
		}
		if !r.Truncated() {
			t.Fatalf("off=%d: corruption not detected", off)
		}
		checkPrefix(t, r, 0, n-1)
	}
}

// TestTornTailAcrossSegments cuts inside the final record of a
// multi-segment log: earlier segments must survive untouched.
func TestTornTailAcrossSegments(t *testing.T) {
	const n = 60
	src := t.TempDir()
	writeLog(t, src, 0, n, Options{SegmentBytes: 300})
	segs, err := listSegments(src)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want several segments (err=%v, n=%d)", err, len(segs))
	}
	last := segs[len(segs)-1]
	st, err := os.Stat(last.path)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := recordSize(payloadFor(n - 1))
	for cut := st.Size() - lastLen; cut < st.Size(); cut++ {
		dir := copyDir(t, src)
		seg := filepath.Join(dir, filepath.Base(last.path))
		if err := os.Truncate(seg, cut); err != nil {
			t.Fatal(err)
		}
		r, err := Recover(dir)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		checkPrefix(t, r, 0, n-1)
	}
}

// FuzzTornTail lets the fuzzer pick arbitrary cut points across the
// whole (single-segment) log — not just the final record — and checks
// the invariant that recovery always yields some exact prefix of the
// original records.
func FuzzTornTail(f *testing.F) {
	const n = 16
	src := f.TempDir()
	w, err := Create(src, 0, Options{})
	if err != nil {
		f.Fatal(err)
	}
	var sizes []int64
	total := int64(0)
	for age := uint64(0); age < n; age++ {
		p := payloadFor(age)
		if err := w.Append(age, p); err != nil {
			f.Fatal(err)
		}
		total += recordSize(p)
		sizes = append(sizes, total)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	segs, _ := listSegments(src)
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint16(0))
	f.Add(uint16(len(data) / 2))
	f.Add(uint16(len(data) - 1))
	f.Fuzz(func(t *testing.T, cut16 uint16) {
		cut := int64(cut16) % int64(len(data)+1)
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0].path)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		// The survivors must be exactly the records wholly below the
		// cut: count = #{i : sizes[i] <= cut}.
		want := uint64(0)
		for _, s := range sizes {
			if s <= cut {
				want++
			}
		}
		checkPrefix(t, r, 0, want)
	})
}
