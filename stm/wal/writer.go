package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrClosed is returned by Append and Sync after Close.
var ErrClosed = errors.New("wal: writer closed")

// flushChunk bounds how much appended data may sit in the in-process
// buffer before it is written through to the OS (without fsync), so a
// sync-policy-"none" stream does not accumulate its whole history in
// memory.
const flushChunk = 1 << 20

// Writer appends the committed-order record stream to a segmented log.
// It implements stm.DurableLog.
//
// Append is cheap — it frames the record into an in-process buffer —
// and strictly age-ordered: the first append must be the log's first
// age (Create's firstAge, or Recovery.Next after a restart), and each
// append the age after the previous one. An append below the expected
// age is a no-op success: the record is already in the log, which is
// what makes recovery replay through a WAL-attached pipeline
// idempotent.
//
// Durability advances only at fsync points, chosen by Options (group
// commit) or forced by Sync. All methods are safe for concurrent use;
// appends may proceed while an fsync is in flight, which is where
// group commit's throughput comes from.
type Writer struct {
	opts Options
	dir  string

	mu       sync.Mutex
	f        *os.File
	buf      []byte     // framed records not yet written to f
	segSize  int64      // bytes already written to f (excludes buf)
	sinceN   int        // appends since the last count-based sync kick
	retired  []*os.File // full segments awaiting their fsync+close
	dirDirty bool       // a segment was created since the last dir sync
	err      error
	notify   func(next uint64, err error)
	closed   bool

	// syncMu serializes sync points. Lock order: syncMu may take mu
	// (Sync snapshots under it); mu never waits on syncMu — a segment
	// roll only parks the finished file on the retired list, leaving
	// all storage waits (fsync, close, directory sync) to the next
	// sync point, off the commit path.
	syncMu sync.Mutex

	next    atomic.Uint64 // next age to append
	durable atomic.Uint64 // every age below it is on stable storage
	fsyncs  atomic.Uint64
	nbytes  atomic.Uint64 // framed bytes appended over the log's life

	kick     chan struct{}
	done     chan struct{}
	loopDone chan struct{} // nil when no background syncer runs
}

// Create initializes a fresh log in dir whose first record will carry
// firstAge, and returns its Writer. The directory is created if
// missing and must not already contain segments (recover an existing
// log with Recover instead). The first — empty — segment is created
// eagerly so the log's starting age survives a crash that happens
// before the first append.
func Create(dir string, firstAge uint64, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		return nil, fmt.Errorf("wal: %s already holds a log (first segment %016x); use Recover", dir, segs[0].age)
	}
	w := newWriter(dir, opts)
	w.next.Store(firstAge)
	w.durable.Store(firstAge)
	if err := w.openSegment(firstAge); err != nil {
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		w.f.Close()
		return nil, err
	}
	w.startSyncer()
	return w, nil
}

func newWriter(dir string, opts Options) *Writer {
	return &Writer{
		opts: opts,
		dir:  dir,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
}

// startSyncer launches the group-commit syncer when the policy needs
// one (count- or time-based syncing). Policy "none" has no background
// work: durability points are wherever the caller puts Sync.
func (w *Writer) startSyncer() {
	if w.opts.SyncEveryN <= 0 && w.opts.SyncInterval <= 0 {
		return
	}
	w.loopDone = make(chan struct{})
	go w.syncLoop()
}

// Policy returns the writer's sync policy in human-readable form.
func (w *Writer) Policy() string { return w.opts.policy() }

// Next returns the next age the writer expects to append.
func (w *Writer) Next() uint64 { return w.next.Load() }

// Durable returns the durability frontier: every age below it is on
// stable storage. It implements stm.DurableLog.
func (w *Writer) Durable() uint64 { return w.durable.Load() }

// Fsyncs returns how many fsyncs the writer has issued.
func (w *Writer) Fsyncs() uint64 { return w.fsyncs.Load() }

// Bytes returns the total framed bytes appended over the log's life,
// including recovered history when the writer was reopened.
func (w *Writer) Bytes() uint64 { return w.nbytes.Load() }

// Notify registers the durability observer: fn is called after every
// fsync with the new durability frontier, and with a non-nil error if
// the log fails. It is called without writer locks held; at most one
// observer is supported (the pipeline). It implements stm.DurableLog.
func (w *Writer) Notify(fn func(next uint64, err error)) {
	w.mu.Lock()
	w.notify = fn
	w.mu.Unlock()
}

// Append frames the record for age into the log. Ages must arrive in
// order; an age already in the log is ignored (see type doc). The
// record is buffered — not durable — until the next sync point.
func (w *Writer) Append(age uint64, payload []byte) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	next := w.next.Load()
	if age < next {
		w.mu.Unlock()
		return nil // already logged (recovery replay)
	}
	if age != next {
		w.mu.Unlock()
		return fmt.Errorf("wal: append age %d out of order (expected %d)", age, next)
	}
	need := recordSize(payload)
	if filled := w.segSize + int64(len(w.buf)); filled > 0 && filled+need > w.opts.SegmentBytes {
		if err := w.rollLocked(); err != nil {
			w.failLocked(err)
			w.mu.Unlock()
			return err
		}
	}
	w.buf = appendRecord(w.buf, age, payload)
	w.next.Store(age + 1)
	w.nbytes.Add(uint64(need))
	var kicked bool
	if n := w.opts.SyncEveryN; n > 0 {
		if w.sinceN++; w.sinceN >= n {
			w.sinceN = 0
			kicked = true
		}
	}
	if len(w.buf) >= flushChunk {
		if err := w.flushLocked(); err != nil {
			w.failLocked(err)
			w.mu.Unlock()
			return err
		}
	}
	w.mu.Unlock()
	if kicked {
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// Sync makes every appended record durable: it flushes the buffer,
// fsyncs (then closes) any segments retired by rolls, fsyncs the
// current segment and — when a segment was created since the last
// sync point — the directory, advancing the durability frontier and
// notifying the observer. Safe to call from any goroutine, including
// concurrently with Append.
func (w *Writer) Sync() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.err != nil {
		// The log is already dead; still fire the observer so tickets
		// parked awaiting durability before the failure learn about it
		// instead of hanging until Close.
		err := w.err
		fn := w.notify
		w.mu.Unlock()
		if fn != nil {
			fn(w.durable.Load(), err)
		}
		return err
	}
	if w.f == nil {
		w.mu.Unlock()
		return ErrClosed
	}
	fn := w.notify
	if err := w.flushLocked(); err != nil {
		w.failLocked(err)
		w.mu.Unlock()
		if fn != nil {
			fn(w.durable.Load(), err)
		}
		return err
	}
	target := w.next.Load()
	ret := w.retired
	w.retired = nil
	f := w.f
	dirty := w.dirDirty
	w.dirDirty = false
	w.mu.Unlock()

	// All of target's records were flushed above, so they live in the
	// retired segments plus f (f may be rolled onto the retired list
	// concurrently, but it stays open until a sync drains it, so the
	// fsync below still covers it; the next sync closes it).
	var err error
	for _, rf := range ret {
		if err == nil {
			if err = rf.Sync(); err == nil {
				w.fsyncs.Add(1)
			}
		}
		if cerr := rf.Close(); err == nil && cerr != nil {
			err = cerr
		}
	}
	if err == nil && target > w.durable.Load() {
		if err = f.Sync(); err == nil {
			w.fsyncs.Add(1)
		}
	}
	if err == nil && dirty {
		// Segment files must be reachable from the directory before
		// their records count as durable — a dir-sync failure must
		// hold the frontier back, not be shrugged off.
		err = syncDir(w.dir)
	}
	if err == nil && target > w.durable.Load() {
		w.durable.Store(target)
	}
	if err != nil {
		w.mu.Lock()
		w.failLocked(err)
		w.mu.Unlock()
	}
	if fn != nil {
		fn(w.durable.Load(), err)
	}
	return err
}

// Close stops the syncer, makes the tail durable, and closes the
// current segment. The writer rejects appends afterwards.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.closed = true
	w.mu.Unlock()
	if w.loopDone != nil {
		close(w.done)
		<-w.loopDone
	}
	err := w.Sync()
	w.mu.Lock()
	for _, rf := range w.retired { // only non-empty if the sync failed
		rf.Close()
	}
	w.retired = nil
	if w.f != nil {
		if cerr := w.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		w.f = nil
	}
	w.mu.Unlock()
	return err
}

// idleFlush bounds how long a partial batch may strand the tail when
// only count-based syncing is configured: a count policy alone would
// leave the last N-1 appends — and any WaitDurable ticket parked on
// them — waiting for traffic that may never come.
const idleFlush = 2 * time.Millisecond

// syncLoop is the group-commit syncer: it turns count kicks and
// interval ticks into fsyncs, each covering every record appended
// since the last one.
func (w *Writer) syncLoop() {
	defer close(w.loopDone)
	interval := w.opts.SyncInterval
	if interval <= 0 && w.opts.SyncEveryN > 0 {
		interval = idleFlush
	}
	var tick <-chan time.Time
	if interval > 0 {
		t := time.NewTicker(interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-w.done:
			return
		case <-w.kick:
		case <-tick:
			if w.next.Load() == w.durable.Load() {
				continue // nothing dirty
			}
		}
		w.Sync() // errors latch into w.err and reach the observer
	}
}

// flushLocked writes the buffer through to the OS (no fsync). Caller
// holds mu.
func (w *Writer) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	n, err := w.f.Write(w.buf)
	w.segSize += int64(n)
	if err != nil {
		return err
	}
	w.buf = w.buf[:0]
	return nil
}

// rollLocked finishes the current segment and opens a fresh one named
// by the next age. Caller holds mu. The finished segment is only
// flushed and parked on the retired list — its fsync and close happen
// at the next sync point, so a roll on the commit path never waits on
// stable storage.
func (w *Writer) rollLocked() error {
	if err := w.flushLocked(); err != nil {
		return err
	}
	w.retired = append(w.retired, w.f)
	w.f = nil
	if err := w.openSegment(w.next.Load()); err != nil {
		return err
	}
	w.dirDirty = true
	return nil
}

// failLocked latches the first error; the log is dead afterwards.
// Caller holds mu.
func (w *Writer) failLocked(err error) {
	if w.err == nil {
		w.err = err
	}
}

// openSegment creates the segment file whose first record will carry
// age. Caller holds mu (or is the constructor).
func (w *Writer) openSegment(age uint64) error {
	f, err := os.OpenFile(segmentPath(w.dir, age), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.segSize = 0
	return nil
}

// segmentPath names segments by the age of their first record.
func segmentPath(dir string, age uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x.wal", age))
}

// syncDir fsyncs the directory so segment creation/removal survives a
// crash. A filesystem that does not support directory fsync reports
// EINVAL, which is benign (there is nothing stronger to ask of it);
// any other failure is a genuine I/O error the caller must treat as a
// failed sync point.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	if err != nil && errors.Is(err, syscall.EINVAL) {
		return nil
	}
	return err
}
