package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrClosed is returned by Append and Sync after Close.
var ErrClosed = errors.New("wal: writer closed")

// flushChunk bounds how much appended data may sit in the in-process
// buffer before it is written through to the OS (without fsync), so a
// sync-policy-"none" stream does not accumulate its whole history in
// memory.
const flushChunk = 1 << 20

// Writer appends the committed-order record stream to a segmented log.
// It implements stm.DurableLog.
//
// Append is cheap — it frames the record into an in-process buffer —
// and strictly age-ordered: the first append must be the log's first
// age (Create's firstAge, or Recovery.Next after a restart), and each
// append the age after the previous one. An append below the expected
// age is a no-op success: the record is already in the log, which is
// what makes recovery replay through a WAL-attached pipeline
// idempotent.
//
// Durability advances only at sync points, chosen by Options (group
// commit) or forced by Sync. Sync points are pipelined: admission
// snapshots the group (buffer flushed, target frontier fixed) and
// hands it to a sync worker, so the next group is admitted while the
// previous fsync is still in flight; the completer then retires
// groups strictly in admission order, which keeps the durability
// frontier monotone and observer callbacks in age order. All methods
// are safe for concurrent use; appends may proceed while any number
// of fsyncs are in flight, which is where group commit's throughput
// comes from.
type Writer struct {
	opts Options
	dir  string
	fs   FS // Options.FS, defaulted to OS

	mu       sync.Mutex
	f        File
	buf      []byte // framed records not yet written to f
	segSize  int64  // bytes already written to f (excludes buf)
	sinceN   int    // appends since the last count-based sync kick
	retired  []File // full segments awaiting their fsync+close
	dirDirty bool   // a segment was created since the last dir sync
	err      error
	notify   func(next uint64, err error)
	taps     []func(durable uint64)
	closed   bool

	// admitMu serializes sync-group admission (the append/admission
	// stage of the pipelined syncer). Lock order: admitMu may take mu
	// (admission snapshots the group under it); mu never waits on
	// admitMu — a segment roll only parks the finished file on the
	// retired list, leaving all storage waits (fsync, close, directory
	// sync) to the sync workers, off the commit path.
	admitMu     sync.Mutex
	admitClosed bool   // opCh closed; no further admissions
	seq         uint64 // admission sequence number (completion order)

	next    atomic.Uint64 // next age to append
	durable atomic.Uint64 // every age below it is on stable storage
	fsyncs  atomic.Uint64
	nbytes  atomic.Uint64 // framed bytes appended over the log's life

	admittedB atomic.Uint64 // nbytes watermark at the last admission
	inflight  atomic.Int64  // sync groups admitted but not yet completed
	depthMax  atomic.Int64  // high watermark of inflight
	overlaps  atomic.Uint64 // admissions that found another sync in flight

	opCh   chan *syncOp // admission → sync workers
	compCh chan *syncOp // sync workers → completer
	wdone  sync.WaitGroup
	cdone  chan struct{}

	ckptMu   sync.Mutex // serializes Checkpoint
	ckptAge_ atomic.Uint64
	ckpts    atomic.Uint64

	ioErrs    ioErrCounters
	retries   atomic.Uint64 // operations retried after a transient failure
	degraded  atomic.Bool   // OnFail=Degrade tripped; durability detached
	failNoted atomic.Bool   // the failure notification has been delivered

	kick     chan struct{}
	done     chan struct{}
	loopDone chan struct{} // nil when no background syncer runs

	wo *walObs // nil unless Options.Obs is set
}

// syncOp is one admitted sync group: everything appended up to target
// was flushed to the OS at admission; the op carries the storage work
// (fsync retired segments, fsync the current segment, sync the
// directory) to a worker, and its in-order completion advances the
// durability frontier.
type syncOp struct {
	seq      uint64
	target   uint64
	retired  []File
	cur      File
	dirDirty bool
	err      error
	done     chan struct{} // non-nil for explicit Sync waiters
}

// ioErrCounters tallies terminal-and-transient I/O failures by
// operation class, feeding the wal_io_errors{op} metric family.
type ioErrCounters struct {
	write   atomic.Uint64 // segment writes (incl. short writes)
	fsync   atomic.Uint64 // fdatasync of a segment
	dirsync atomic.Uint64 // directory syncs
	open    atomic.Uint64 // segment creation (e.g. ENOSPC on roll)
	ckpt    atomic.Uint64 // checkpoint write/rename path
}

func (c *ioErrCounters) total() uint64 {
	return c.write.Load() + c.fsync.Load() + c.dirsync.Load() +
		c.open.Load() + c.ckpt.Load()
}

// Create initializes a fresh log in dir whose first record will carry
// firstAge, and returns its Writer. The directory is created if
// missing and must not already contain segments (recover an existing
// log with Recover instead). The first — empty — segment is created
// eagerly so the log's starting age survives a crash that happens
// before the first append.
func Create(dir string, firstAge uint64, opts Options) (*Writer, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		return nil, fmt.Errorf("wal: %s already holds a log (first segment %016x); use Recover", dir, segs[0].age)
	}
	w := newWriter(dir, opts)
	w.next.Store(firstAge)
	w.durable.Store(firstAge)
	if err := w.openSegment(firstAge); err != nil {
		return nil, err
	}
	if err := w.fs.SyncDir(dir); err != nil {
		w.f.Close()
		return nil, err
	}
	w.startSyncer()
	return w, nil
}

func newWriter(dir string, opts Options) *Writer {
	return &Writer{
		opts:   opts,
		dir:    dir,
		fs:     opts.FS,
		opCh:   make(chan *syncOp),
		compCh: make(chan *syncOp, opts.MaxInFlightSyncs),
		cdone:  make(chan struct{}),
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

// startSyncer launches the sync-stage goroutines: MaxInFlightSyncs
// workers that fsync admitted groups in parallel, the completer that
// retires them in admission order, and — when the policy needs one
// (count-, time-based or adaptive syncing) — the admission loop that
// turns kicks and ticks into sync groups. Policy "none" runs only the
// workers: durability points are wherever the caller puts Sync.
func (w *Writer) startSyncer() {
	if w.opts.Obs != nil {
		w.wo = newWalObs(w.opts.Obs, w)
	}
	for i := 0; i < w.opts.MaxInFlightSyncs; i++ {
		w.wdone.Add(1)
		go w.syncWorker()
	}
	go w.completer()
	if w.opts.SyncEveryN <= 0 && w.opts.SyncInterval <= 0 && !w.opts.Adaptive {
		return
	}
	w.loopDone = make(chan struct{})
	go w.syncLoop()
}

// Policy returns the writer's sync policy in human-readable form.
func (w *Writer) Policy() string { return w.opts.policy() }

// Next returns the next age the writer expects to append.
func (w *Writer) Next() uint64 { return w.next.Load() }

// Durable returns the durability frontier: every age below it is on
// stable storage. It implements stm.DurableLog.
func (w *Writer) Durable() uint64 { return w.durable.Load() }

// Fsyncs returns how many fsyncs the writer has issued.
func (w *Writer) Fsyncs() uint64 { return w.fsyncs.Load() }

// Bytes returns the total framed bytes appended over the log's life,
// including recovered history when the writer was reopened.
func (w *Writer) Bytes() uint64 { return w.nbytes.Load() }

// SyncDepthMax returns the high watermark of concurrently in-flight
// sync groups — the pipelining actually achieved (>1 means an fsync
// overlapped another group's admission or fsync).
func (w *Writer) SyncDepthMax() int { return int(w.depthMax.Load()) }

// OverlappedSyncs returns how many sync groups were admitted while at
// least one earlier group's fsync was still in flight.
func (w *Writer) OverlappedSyncs() uint64 { return w.overlaps.Load() }

// Notify registers the durability observer: fn is called after every
// sync-point completion with the new durability frontier, and with a
// non-nil error if the log fails. Completions are delivered strictly
// in admission (= age) order, without writer locks held; at most one
// observer is supported (the pipeline). It implements stm.DurableLog.
func (w *Writer) Notify(fn func(next uint64, err error)) {
	w.mu.Lock()
	w.notify = fn
	w.mu.Unlock()
}

// Tap registers an additional durability observer: fn is called after
// every successful sync-point completion with the new durability
// frontier, in frontier order, without writer locks held. Unlike
// Notify — the single structural observer that is the pipeline — taps
// are additive and never see errors; they exist for components that
// chase the durable prefix, such as a replication shipper waking up to
// read newly-durable bytes. fn must not block: it runs on the
// completer goroutine, upstream of every later group's retirement.
func (w *Writer) Tap(fn func(durable uint64)) {
	w.mu.Lock()
	w.taps = append(w.taps, fn)
	w.mu.Unlock()
}

// Dir returns the log's directory.
func (w *Writer) Dir() string { return w.dir }

// Append frames the record for age into the log. Ages must arrive in
// order; an age already in the log is ignored (see type doc). The
// record is buffered — not durable — until the next sync point.
func (w *Writer) Append(age uint64, payload []byte) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	next := w.next.Load()
	if age < next {
		w.mu.Unlock()
		return nil // already logged (recovery replay)
	}
	if age != next {
		w.mu.Unlock()
		return fmt.Errorf("wal: append age %d out of order (expected %d)", age, next)
	}
	need := recordSize(payload)
	if filled := w.segSize + int64(len(w.buf)); filled > 0 && filled+need > w.opts.SegmentBytes {
		if err := w.rollLocked(); err != nil {
			err = w.failLocked(err)
			w.mu.Unlock()
			w.notifyFailAsync()
			return err
		}
	}
	w.buf = appendRecord(w.buf, age, payload)
	w.next.Store(age + 1)
	w.nbytes.Add(uint64(need))
	var kicked bool
	switch {
	case w.opts.Adaptive:
		// Adaptive sizing: admit immediately while the device is idle
		// (smallest groups, lowest latency); while syncs are in flight
		// let the group grow until it hits the byte target (a slot
		// freeing up admits it earlier — see admit-on-drain).
		kicked = w.inflight.Load() == 0 ||
			w.nbytes.Load()-w.admittedB.Load() >= uint64(w.opts.AdaptiveBytes)
	case w.opts.SyncEveryN > 0:
		// The count is a cap on how long a record may wait under load,
		// never a reason to strand one while the device is idle: an
		// append that finds no sync in flight admits immediately, and
		// groups self-size to fsync duration once the device is busy
		// (everything appended during one fsync rides the next). This
		// is what keeps closed-loop WaitDurable cadence at device
		// speed instead of idle-timer speed.
		if w.sinceN++; w.sinceN >= w.opts.SyncEveryN || w.inflight.Load() == 0 {
			w.sinceN = 0
			kicked = true
		}
	}
	if len(w.buf) >= flushChunk {
		if err := w.flushLocked(); err != nil {
			err = w.failLocked(err)
			w.mu.Unlock()
			w.notifyFailAsync()
			return err
		}
	}
	w.mu.Unlock()
	if kicked {
		w.kickSync()
	}
	return nil
}

func (w *Writer) kickSync() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// admit is the append/admission stage of the pipelined syncer: it
// flushes the buffer, snapshots the sync group (target frontier,
// retired segments, current segment, directory dirtiness) and hands
// it to a sync worker. The send blocks once MaxInFlightSyncs groups
// are on the wire — that is the pipeline's backpressure. With wait
// set (explicit Sync) the op carries a done channel the completer
// closes.
func (w *Writer) admit(wait bool) (*syncOp, error) {
	w.admitMu.Lock()
	defer w.admitMu.Unlock()
	if w.admitClosed {
		return nil, ErrClosed
	}
	w.mu.Lock()
	if w.err != nil {
		// The log is already dead; still fire the observer so tickets
		// parked awaiting durability before the failure learn about it
		// instead of hanging until Close.
		err := w.err
		fn := w.notify
		w.mu.Unlock()
		w.failNoted.Store(true)
		if fn != nil {
			fn(w.durable.Load(), err)
		}
		return nil, err
	}
	if w.f == nil {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	if err := w.flushLocked(); err != nil {
		err = w.failLocked(err)
		fn := w.notify
		w.mu.Unlock()
		w.failNoted.Store(true)
		if fn != nil {
			fn(w.durable.Load(), err)
		}
		return nil, err
	}
	op := &syncOp{
		seq:      w.seq,
		target:   w.next.Load(),
		retired:  w.retired,
		cur:      w.f,
		dirDirty: w.dirDirty,
	}
	w.seq++
	w.retired = nil
	w.dirDirty = false
	w.sinceN = 0
	w.admittedB.Store(w.nbytes.Load())
	w.mu.Unlock()
	w.wo.admitted(op.target)
	if wait {
		op.done = make(chan struct{})
	}
	if d := w.inflight.Add(1); d > 1 {
		w.overlaps.Add(1)
		for {
			max := w.depthMax.Load()
			if d <= max || w.depthMax.CompareAndSwap(max, d) {
				break
			}
		}
	} else {
		for {
			max := w.depthMax.Load()
			if d <= max || w.depthMax.CompareAndSwap(max, d) {
				break
			}
		}
	}
	w.opCh <- op
	return op, nil
}

// syncWorker is the in-flight sync stage: it performs each admitted
// group's storage work. Several workers may fsync concurrently
// (concurrent fsyncs of the same file are safe — each returns once
// the file's dirty pages up to its own admission are stable); ordering
// is restored by the completer.
func (w *Writer) syncWorker() {
	defer w.wdone.Done()
	for op := range w.opCh {
		w.doSync(op)
		w.compCh <- op
	}
}

func (w *Writer) doSync(op *syncOp) {
	for _, rf := range op.retired {
		if op.err != nil {
			break
		}
		if op.err = w.timedSync(rf); op.err == nil {
			w.fsyncs.Add(1)
		}
	}
	if op.err == nil && op.target > w.durable.Load() {
		if op.err = w.timedSync(op.cur); op.err == nil {
			w.fsyncs.Add(1)
		}
	}
	if op.err == nil && op.dirDirty {
		// Segment files must be reachable from the directory before
		// their records count as durable — a dir-sync failure must
		// hold the frontier back, not be shrugged off.
		op.err = w.retry(&w.ioErrs.dirsync, func() error { return w.fs.SyncDir(w.dir) })
	}
}

// timedSync is Fdatasync with the retry policy applied and the
// fsync-latency histogram attached; without observability it is a
// direct call.
func (w *Writer) timedSync(f File) error {
	return w.retry(&w.ioErrs.fsync, func() error {
		if w.wo == nil {
			return f.Fdatasync()
		}
		t0 := time.Now()
		err := f.Fdatasync()
		w.wo.fsyncLat.Observe(time.Since(t0).Nanoseconds())
		return err
	})
}

// retry runs op, retrying per Options.Retry with exponential backoff
// on failure. Every failed attempt counts into the per-op error
// counter; every re-attempt counts into retries. The sync stage
// retries off the commit path; the append path's retries (segment
// write, segment open on roll) happen under mu and therefore stall
// appends for at most the bounded backoff sum — the price of riding
// out a transient error without declaring the log dead.
func (w *Writer) retry(cnt *atomic.Uint64, op func() error) error {
	err := op()
	if err == nil {
		return nil
	}
	cnt.Add(1)
	pol := w.opts.Retry
	backoff := pol.Backoff
	for i := 0; i < pol.Max; i++ {
		time.Sleep(backoff)
		if backoff *= 2; backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
		w.retries.Add(1)
		if err = op(); err == nil {
			return nil
		}
		cnt.Add(1)
	}
	return err
}

// completer retires sync groups strictly in admission order: it closes
// the segments a group retired (safe only here — all earlier groups,
// the last that could fsync those files, have completed), advances the
// durability frontier, and fires the observer. Out-of-order worker
// completions park until their turn.
func (w *Writer) completer() {
	defer close(w.cdone)
	pend := make(map[uint64]*syncOp)
	var next uint64
	for op := range w.compCh {
		pend[op.seq] = op
		for {
			o, ok := pend[next]
			if !ok {
				break
			}
			delete(pend, next)
			next++
			w.complete(o)
			w.inflight.Add(-1)
		}
	}
}

func (w *Writer) complete(op *syncOp) {
	for _, rf := range op.retired {
		if cerr := rf.Close(); cerr != nil && op.err == nil {
			op.err = cerr
		}
	}
	w.mu.Lock()
	if w.err != nil && op.err == nil {
		// An earlier sync point failed: the durable prefix is frozen,
		// and this group's own success must not leapfrog the failure.
		op.err = w.err
	}
	if op.err != nil {
		op.err = w.failLocked(op.err)
		w.failNoted.Store(true) // the observer call below delivers it
	} else if op.target > w.durable.Load() {
		w.durable.Store(op.target)
	}
	fn := w.notify
	taps := w.taps
	drain := op.err == nil && w.loopDone != nil && !w.closed &&
		(w.opts.SyncEveryN > 0 || w.opts.Adaptive) &&
		w.next.Load() != w.durable.Load()
	w.mu.Unlock()
	if fn != nil {
		fn(w.durable.Load(), op.err)
	}
	if op.err == nil {
		for _, tap := range taps {
			tap(w.durable.Load())
		}
	}
	if op.done != nil {
		close(op.done)
	}
	if drain {
		// Admit-on-drain: records are pending and a sync slot just
		// freed — admit them now instead of stranding a partial group
		// behind the idle timer. This is what keeps the durable tail
		// latency at device speed when producers are slower than the
		// group-size target.
		w.kickSync()
	}
}

// Sync makes every appended record durable before returning: it admits
// a sync group covering everything appended so far and waits for its
// in-order completion (which also covers every earlier group). Safe to
// call from any goroutine, including concurrently with Append.
func (w *Writer) Sync() error {
	op, err := w.admit(true)
	if err != nil {
		return err
	}
	<-op.done
	return op.err
}

// Close stops the syncer, makes the tail durable, and closes the
// current segment. The writer rejects appends afterwards.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.closed = true
	w.mu.Unlock()
	if w.loopDone != nil {
		close(w.done)
		<-w.loopDone
	}
	err := w.Sync() // final sync point; in-order completion covers all earlier ones
	w.admitMu.Lock()
	w.admitClosed = true
	close(w.opCh)
	w.admitMu.Unlock()
	w.wdone.Wait()
	close(w.compCh)
	<-w.cdone
	w.mu.Lock()
	for _, rf := range w.retired { // only non-empty if the sync failed
		rf.Close()
	}
	w.retired = nil
	if w.f != nil {
		if cerr := w.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		w.f = nil
	}
	w.mu.Unlock()
	return err
}

// idleFlush bounds how long a partial group may strand the tail when
// no interval policy is configured: count and adaptive policies kick
// on their own triggers, but a stream that simply stops producing
// would otherwise leave its last records — and any WaitDurable ticket
// parked on them — waiting for traffic that may never come.
const idleFlush = 2 * time.Millisecond

// syncLoop is the admission loop of the group-commit syncer: it turns
// count kicks, adaptive kicks, drain kicks and interval ticks into
// sync-group admissions, each covering every record appended since the
// previous admission.
func (w *Writer) syncLoop() {
	defer close(w.loopDone)
	interval := w.opts.SyncInterval
	if interval <= 0 {
		interval = idleFlush
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-w.kick:
			if w.next.Load() == w.durable.Load() && w.inflight.Load() > 0 {
				continue // everything pending is already on the wire
			}
		case <-t.C:
			if w.next.Load() == w.durable.Load() {
				continue // nothing dirty
			}
		}
		if _, err := w.admit(false); err != nil {
			return // log closed or dead; errors latched into w.err
		}
	}
}

// flushLocked writes the buffer through to the OS (no fsync),
// retrying transient and short writes per the retry policy. Caller
// holds mu.
func (w *Writer) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	buf := w.buf
	err := w.retry(&w.ioErrs.write, func() error {
		n, werr := w.f.Write(buf)
		w.segSize += int64(n)
		buf = buf[n:]
		if werr == nil && len(buf) > 0 {
			werr = io.ErrShortWrite
		}
		return werr
	})
	if err != nil {
		return err
	}
	w.buf = w.buf[:0]
	return nil
}

// rollLocked finishes the current segment and opens a fresh one named
// by the next age. Caller holds mu. The finished segment is only
// flushed and parked on the retired list — its fsync and close happen
// at the next sync point, so a roll on the commit path never waits on
// stable storage.
func (w *Writer) rollLocked() error {
	if err := w.flushLocked(); err != nil {
		return err
	}
	w.retired = append(w.retired, w.f)
	w.f = nil
	if err := w.openSegment(w.next.Load()); err != nil {
		return err
	}
	w.dirDirty = true
	return nil
}

// failLocked latches a terminal failure per the OnFail policy and
// returns the latched error. Under FailStop the log is dead: w.err is
// the raw cause and every durable-path call returns it. Under Degrade
// the log detaches at a clean record boundary instead: the buffer
// (which only ever holds whole frames) is dropped, the degraded gauge
// flips, and w.err wraps ErrDegraded — appends and syncs fail fast
// with it while the engine above keeps committing volatile. Either
// way the durable prefix below the last completed sync point stands.
// Caller holds mu.
func (w *Writer) failLocked(err error) error {
	if w.err != nil {
		return w.err
	}
	if w.opts.OnFail == Degrade {
		w.degraded.Store(true)
		w.buf = w.buf[:0]
		w.err = fmt.Errorf("%w (cause: %v)", ErrDegraded, err)
	} else {
		w.err = err
	}
	return w.err
}

// notifyFailAsync delivers a failure to the durability observer from
// its own goroutine, at most once across all failure paths. Append
// runs under the pipeline's stream lock and the observer
// (Pipeline.durableTo) takes that same lock, so the append path must
// never call the observer synchronously; the async note is what fails
// WaitDurable tickets parked before the failure fast, instead of
// leaving them to hang until the next sync point or Close.
func (w *Writer) notifyFailAsync() {
	if !w.failNoted.CompareAndSwap(false, true) {
		return
	}
	go func() {
		w.mu.Lock()
		fn, err := w.notify, w.err
		w.mu.Unlock()
		if fn != nil && err != nil {
			fn(w.durable.Load(), err)
		}
	}()
}

// Degraded reports whether the log has detached under OnFail=Degrade.
func (w *Writer) Degraded() bool { return w.degraded.Load() }

// Retries returns how many I/O operations were re-attempted after a
// transient failure.
func (w *Writer) Retries() uint64 { return w.retries.Load() }

// IOErrors returns the total count of failed I/O attempts across all
// operation classes (per-class counts feed the wal_io_errors{op}
// metric family).
func (w *Writer) IOErrors() uint64 { return w.ioErrs.total() }

// openSegment creates the segment file whose first record will carry
// age. Caller holds mu (or is the constructor).
func (w *Writer) openSegment(age uint64) error {
	var f File
	err := w.retry(&w.ioErrs.open, func() error {
		var oerr error
		f, oerr = w.fs.OpenFile(segmentPath(w.dir, age), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		return oerr
	})
	if err != nil {
		return err
	}
	w.f = f
	w.segSize = 0
	return nil
}

// segmentPath names segments by the age of their first record.
func segmentPath(dir string, age uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x.wal", age))
}

// syncDir fsyncs the directory so segment creation/removal survives a
// crash. A filesystem that does not support directory fsync reports
// EINVAL, which is benign (there is nothing stronger to ask of it);
// any other failure is a genuine I/O error the caller must treat as a
// failed sync point.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	if err != nil && errors.Is(err, syscall.EINVAL) {
		return nil
	}
	return err
}
