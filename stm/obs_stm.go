package stm

import (
	"sync/atomic"
	"time"

	"github.com/orderedstm/ostm/internal/meta"
	"github.com/orderedstm/ostm/stm/obs"
)

// latSampleMask selects which ages get latency-timestamped: ages
// with age&latSampleMask == 0, i.e. 1 in 32. The commit frontier is a
// serialized section, so a clock read plus histogram record per
// transaction costs whole percents of throughput; sampling keeps the
// percentile estimates (at engine rates, thousands of samples per
// second of wall time) while 31 of 32 transactions never touch the
// clock. Deterministic age-based selection means a sampled age is
// timed consistently across submit, commit, and durable resolution.
const latSampleMask = 31

// pipeObs bundles the pipeline's observability instruments: handles
// are resolved once at NewPipeline, so the hot paths touch plain
// pointers and atomic adds — never the registry. A nil *pipeObs (no
// Config.Obs) keeps every instrumented path on a single predictable
// branch; nothing else is paid.
type pipeObs struct {
	submitWaits *obs.Counter   // submissions that parked on backpressure
	submitWait  *obs.Histogram // ns parked before an age was assigned
	commitLat   *obs.Histogram // ns from age assignment to commit
	resolveLat  *obs.Histogram // ns from age assignment to ticket resolution
	ckptDur     *obs.Histogram // ns per committed checkpoint
	trace       *obs.TraceRing // sampled lifecycle events (may be nil)
	lastCommit  atomic.Int64   // UnixNano of the newest frontier advance
}

// newPipeObs registers the pipeline's metric families on r and
// returns the resolved handles. Engine-behavior families (commits,
// aborts by cause, retries) carry an alg label so per-algorithm abort
// breakdowns survive aggregation; lifecycle families stay unlabeled
// (the sharded router scopes whole registries per shard instead).
func newPipeObs(r *obs.Registry, p *Pipeline) *pipeObs {
	po := &pipeObs{trace: r.Trace()}
	po.lastCommit.Store(time.Now().UnixNano())
	po.submitWaits = r.Counter("ostm_submit_wait_total",
		"submissions that parked on backpressure before an age was assigned")
	po.submitWait = r.DurationHistogram("ostm_submit_wait_seconds",
		"backpressure wait from submit call to age assignment")
	po.commitLat = r.DurationHistogram("ostm_commit_seconds",
		"latency from age assignment to commit at the frontier")
	po.resolveLat = r.DurationHistogram("ostm_resolve_seconds",
		"latency from age assignment to ticket resolution (includes durability under WaitDurable)")
	po.ckptDur = r.DurationHistogram("ostm_checkpoint_seconds",
		"wall time of one checkpoint, claim gate to sink commit")

	ar := r.With("alg", p.cfg.Algorithm.String())
	ar.CounterFunc("ostm_commits_total",
		"transactions committed by the engine",
		func() float64 { return float64(p.Stats().Commits) })
	ar.CounterFunc("ostm_starts_total",
		"execution attempts started, retries included",
		func() float64 { return float64(p.Stats().Starts) })
	ar.CounterFunc("ostm_retries_total",
		"aborted attempts that were retried",
		func() float64 { return float64(p.Stats().Retries) })
	ar.CounterFunc("ostm_quiesces_total",
		"validator quiesce gates raised against retry storms",
		func() float64 { return float64(p.Stats().Quiesces) })
	for c := meta.Cause(1); c < meta.NumCauses; c++ {
		cause := c
		ar.With("cause", cause.String()).CounterFunc("ostm_aborts_total",
			"aborted execution attempts by cause",
			func() float64 { return float64(p.Stats().Aborts[cause]) })
	}

	r.CounterFunc("ostm_submitted_total",
		"transactions accepted into the stream",
		func() float64 { return float64(p.Submitted()) })
	r.CounterFunc("ostm_committed_total",
		"stream transactions whose age reached its final commit",
		func() float64 { return float64(p.Committed()) })
	r.GaugeFunc("ostm_frontier_age",
		"commit frontier: the next age to commit",
		func() float64 { return float64(p.order.Committed()) })
	r.GaugeFunc("ostm_frontier_lag",
		"ages submitted but not yet committed (bounded by Capacity)",
		func() float64 { return float64(p.InFlight()) })
	r.GaugeFunc("ostm_frontier_idle_seconds",
		"seconds since the commit frontier last advanced",
		func() float64 {
			return float64(time.Now().UnixNano()-po.lastCommit.Load()) / 1e9
		})
	r.GaugeFunc("ostm_queue_depth",
		"submission-ring depth: ages submitted but not yet claimed by a worker",
		func() float64 {
			s := p.s
			s.mu.Lock()
			d := s.submitted - s.claimed
			s.mu.Unlock()
			return float64(d)
		})
	r.CounterFunc("ostm_epochs_total",
		"completed recycling epochs",
		func() float64 { return float64(p.Epochs()) })
	if p.s.dur != nil {
		r.GaugeFunc("ostm_durable_age",
			"durability frontier: every age below it is on stable storage",
			func() float64 { return float64(p.Durable()) })
	}
	if p.ckptSink != nil {
		r.CounterFunc("ostm_checkpoints_total",
			"checkpoints committed",
			func() float64 { return float64(p.Checkpoints()) })
		r.GaugeFunc("ostm_checkpoint_age",
			"frontier age of the newest committed checkpoint",
			func() float64 { return float64(p.CheckpointAge()) })
	}
	return po
}
