package stm_test

import (
	"runtime"
	"sync"
	"testing"

	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

// yieldingBody is like randomBody but yields the processor between
// accesses, forcing transaction interleaving even on GOMAXPROCS=1
// hosts. This is the strongest single-core exerciser of forwarding,
// cascading aborts, lock stealing and reachable re-execution.
func yieldingBody(seed uint64, vars []stm.Var, ops int) stm.Body {
	return func(tx stm.Tx, age int) {
		r := rng.New(seed ^ rng.Mix64(uint64(age)))
		acc := uint64(age) + 1
		for op := 0; op < ops; op++ {
			i := r.Intn(len(vars))
			switch r.Intn(4) {
			case 0, 1:
				acc += tx.Read(&vars[i])
			case 2:
				tx.Write(&vars[i], acc^r.Uint64())
			case 3:
				tx.Write(&vars[i], tx.Read(&vars[i])+acc)
			}
			runtime.Gosched()
		}
	}
}

// TestACOEquivalenceInterleaved is the oracle under forced
// interleaving: heavy overlap, few variables, every ordered engine,
// several seeds and worker counts.
func TestACOEquivalenceInterleaved(t *testing.T) {
	const (
		nVars = 6
		nTx   = 150
		ops   = 8
	)
	for _, seed := range []uint64{2, 77} {
		vars := stm.NewVars(nVars)
		body := yieldingBody(seed, vars, ops)

		resetVars(vars)
		mustRun(t, stm.Config{Algorithm: stm.Sequential}, nTx, body)
		want := snapshot(vars)

		for _, alg := range stm.OrderedAlgorithms() {
			for _, workers := range []int{2, 4, 8, 16} {
				resetVars(vars)
				res := mustRun(t, stm.Config{Algorithm: alg, Workers: workers}, nTx, body)
				got := snapshot(vars)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v w=%d seed=%d: var %d got %#x want %#x (stats: %v)",
							alg, workers, seed, i, got[i], want[i], res.Stats)
					}
				}
			}
		}
	}
}

// TestInterleavedConflictsObserved double-checks the interleaving
// actually produces conflicts for the optimistic ordered engines (a
// silent no-overlap run would make the equivalence tests vacuous).
func TestInterleavedConflictsObserved(t *testing.T) {
	vars := stm.NewVars(4)
	body := yieldingBody(5, vars, 10)
	var totalAborts uint64
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal} {
		resetVars(vars)
		res := mustRun(t, stm.Config{Algorithm: alg, Workers: 8}, 200, body)
		totalAborts += res.Stats.TotalAborts()
	}
	if totalAborts == 0 {
		t.Fatal("no aborts across contended interleaved runs; oracle is vacuous")
	}
}

// TestSmallWindowThrottle exercises the Algorithm 5 throttle with a
// tiny run-ahead window.
func TestSmallWindowThrottle(t *testing.T) {
	vars := stm.NewVars(8)
	body := yieldingBody(9, vars, 6)
	resetVars(vars)
	mustRun(t, stm.Config{Algorithm: stm.Sequential}, 120, body)
	want := snapshot(vars)
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal} {
		resetVars(vars)
		mustRun(t, stm.Config{Algorithm: alg, Workers: 4, Window: 8}, 120, body)
		got := snapshot(vars)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: var %d diverged", alg, i)
			}
		}
	}
}

// TestTinyLockTableAliasing forces heavy lock aliasing (4-bit table)
// and checks correctness is preserved (only performance may suffer).
func TestTinyLockTableAliasing(t *testing.T) {
	vars := stm.NewVars(64)
	body := yieldingBody(13, vars, 6)
	resetVars(vars)
	mustRun(t, stm.Config{Algorithm: stm.Sequential}, 150, body)
	want := snapshot(vars)
	for _, alg := range stm.OrderedAlgorithms() {
		resetVars(vars)
		mustRun(t, stm.Config{Algorithm: alg, Workers: 6, TableBits: 4}, 150, body)
		got := snapshot(vars)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v with 16-entry lock table: var %d diverged", alg, i)
			}
		}
	}
}

// TestFewReaderSlots stresses the bounded visible-reader arrays
// (readers must wait for slots, never crash or misread).
func TestFewReaderSlots(t *testing.T) {
	vars := stm.NewVars(2)
	body := yieldingBody(21, vars, 5)
	resetVars(vars)
	mustRun(t, stm.Config{Algorithm: stm.Sequential}, 100, body)
	want := snapshot(vars)
	for _, alg := range []stm.Algorithm{stm.OUL, stm.OULSteal, stm.OrderedUndoLogVis} {
		resetVars(vars)
		mustRun(t, stm.Config{Algorithm: alg, Workers: 8, MaxReaders: 2}, 100, body)
		got := snapshot(vars)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v with 2 reader slots: var %d diverged", alg, i)
			}
		}
	}
}

// TestPipelineStressConcurrentProducers is the streaming stress
// variant (kept -race-clean; CI runs this package under the race
// detector): several producer goroutines submit conflicting
// bank-transfer bodies into one pipeline while a drainer and a stats
// reader poke at it concurrently. Submission interleaving is
// nondeterministic, so the oracle is the conservation invariant
// rather than a sequential replay.
func TestPipelineStressConcurrentProducers(t *testing.T) {
	const (
		producers   = 4
		perProducer = 250
		accounts    = 8
		initial     = 1000
	)
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal, stm.OrderedTL2, stm.STMLite} {
		t.Run(alg.String(), func(t *testing.T) {
			vars := stm.NewVars(accounts)
			for i := range vars {
				vars[i].Store(initial)
			}
			p, err := stm.NewPipeline(stm.Config{
				Algorithm: alg, Workers: 8, Window: 8, Capacity: 32, EpochAges: 128,
			})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for pr := 0; pr < producers; pr++ {
				wg.Add(1)
				go func(pr int) {
					defer wg.Done()
					r := rng.New(uint64(pr)*977 + 11)
					for i := 0; i < perProducer; i++ {
						from := r.Intn(accounts)
						to := r.Intn(accounts)
						amt := uint64(r.Intn(40))
						tk, err := p.Submit(func(tx stm.Tx, age int) {
							b := tx.Read(&vars[from])
							if b >= amt {
								tx.Write(&vars[from], b-amt)
								tx.Write(&vars[to], tx.Read(&vars[to])+amt)
							}
							runtime.Gosched()
						})
						if err != nil {
							t.Errorf("producer %d submit: %v", pr, err)
							return
						}
						if i%16 == 0 {
							if err := tk.Wait(); err != nil {
								t.Errorf("producer %d wait: %v", pr, err)
								return
							}
						}
					}
				}(pr)
			}
			done := make(chan struct{})
			go func() { // concurrent observers
				for {
					select {
					case <-done:
						return
					default:
						_ = p.Stats()
						_ = p.InFlight()
						runtime.Gosched()
					}
				}
			}()
			wg.Wait()
			if err := p.Drain(); err != nil {
				t.Fatalf("Drain: %v", err)
			}
			close(done)
			if err := p.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if got := p.Committed(); got != producers*perProducer {
				t.Fatalf("committed %d, want %d", got, producers*perProducer)
			}
			var total uint64
			for i := range vars {
				total += vars[i].Load()
			}
			if total != accounts*initial {
				t.Fatalf("%v: total %d, want %d (money lost or duplicated)", alg, total, accounts*initial)
			}
		})
	}
}

// TestRepeatedRunsSameExecutor checks an Executor is reusable and
// runs are independent.
func TestRepeatedRunsSameExecutor(t *testing.T) {
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.OULSteal, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	v := stm.NewVar(0)
	for round := 0; round < 5; round++ {
		v.Store(0)
		res, err := ex.Run(50, func(tx stm.Tx, age int) {
			tx.Write(v, tx.Read(v)+1)
			runtime.Gosched()
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.N != 50 || v.Load() != 50 {
			t.Fatalf("round %d: n=%d v=%d", round, res.N, v.Load())
		}
	}
}
