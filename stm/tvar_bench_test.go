package stm_test

import (
	"testing"

	"github.com/orderedstm/ostm/stm"
)

// BenchmarkTypedReadWrite measures the scalar ReadT/WriteT hot path;
// the zero-alloc claim of the typed layer rests on this reporting 0
// allocs/op (the typed ops must compile down to the word ops).
func BenchmarkTypedReadWrite(b *testing.B) {
	v := stm.NewTVar[uint64](1)
	f := stm.NewTVar[float64](1.5)
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.OUL, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := ex.Run(b.N, func(tx stm.Tx, age int) {
		stm.WriteT(tx, v, stm.ReadT(tx, v)+1)
		stm.WriteT(tx, f, stm.ReadT(tx, f)+0.5)
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkWordReadWrite(b *testing.B) {
	v := stm.NewVar(1)
	f := stm.NewVar(2)
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.OUL, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := ex.Run(b.N, func(tx stm.Tx, age int) {
		tx.Write(v, tx.Read(v)+1)
		tx.Write(f, tx.Read(f)+2)
	}); err != nil {
		b.Fatal(err)
	}
}
