package stm

import (
	"context"
	"errors"
)

// Func is a value-returning transaction body: the typed form of Body.
// Like a Body it must be a deterministic function of (age, memory),
// must access shared state only through the transaction handle, and
// may be executed many times before its age commits — the runtime
// discards every speculative result and latches only the value
// computed by the attempt that actually commits (see TicketOf).
type Func[R any] func(tx Tx, age int) R

// TicketOf tracks one value-returning submission: it embeds the
// ordinary Ticket resolution machinery (Age, Done, Err, Wait,
// WaitCtx) and latches the transaction's result R exactly once, at
// commit.
//
// The value-latching rule (DESIGN.md §10): a Func may run several
// times — aborted speculative attempts, validator re-executions — and
// every attempt computes an R, but attempts for one age never overlap
// in time and the attempt that commits is always the last one to run.
// The runtime therefore publishes each attempt's R into the ticket
// and lets the commit's happens-before edge (the same one that orders
// the transaction's memory effects before ticket resolution) carry
// the final overwrite to the waiter: once the ticket resolves, Value
// observes exactly the committing attempt's R, and no speculative
// value can be observed because Value refuses to read before
// resolution.
type TicketOf[R any] struct {
	Ticket
	fn  Func[R]
	cur R // latched by the committing attempt (see rule above)
}

// run adapts the typed Func to the engine's Body contract, recording
// the attempt's result. It is the only writer of cur; readers gate on
// ticket resolution.
func (t *TicketOf[R]) run(tx Tx, age int) { t.cur = t.fn(tx, age) }

// Value blocks until the ticket resolves and returns the committed
// attempt's result. If the transaction did not commit (pipeline
// stopped, this transaction faulted), it returns the zero R and the
// resolution error.
func (t *TicketOf[R]) Value() (R, error) {
	if err := t.Ticket.Wait(); err != nil {
		var zero R
		return zero, err
	}
	return t.cur, nil
}

// ValueCtx is Value with a caller-side deadline (Ticket.WaitCtx's
// semantics: cancellation abandons this wait only, never the
// transaction or its latched value).
func (t *TicketOf[R]) ValueCtx(ctx context.Context) (R, error) {
	if err := t.Ticket.WaitCtx(ctx); err != nil {
		var zero R
		return zero, err
	}
	return t.cur, nil
}

// SubmitFunc submits a value-returning transaction to the pipeline:
// fn is executed under the same predefined-order guarantees as a
// Submit body, and the returned TicketOf resolves when its age
// commits, carrying the committing attempt's result. (A free function
// rather than a method because Go methods cannot introduce type
// parameters.)
//
// On a pipeline configured with a WAL it returns ErrPayloadRequired —
// opaque funcs cannot be replayed; use SubmitPayloadT with a typed
// codec instead.
func SubmitFunc[R any](p *Pipeline, fn Func[R]) (*TicketOf[R], error) {
	return SubmitFuncCtx[R](nil, p, fn)
}

// SubmitFuncCtx is SubmitFunc with SubmitCtx's cancellable
// backpressure wait: a nil ctx never cancels; a cancellation before
// an age is assigned withdraws the submission with an error wrapping
// ErrCanceled.
func SubmitFuncCtx[R any](ctx context.Context, p *Pipeline, fn Func[R]) (*TicketOf[R], error) {
	if fn == nil {
		return nil, errors.New("stm: nil func")
	}
	if p.s.dur != nil {
		return nil, ErrPayloadRequired
	}
	t := &TicketOf[R]{Ticket: Ticket{done: make(chan struct{})}, fn: fn}
	if err := p.submitWith(ctx, &t.Ticket, t.run, nil); err != nil {
		return nil, err
	}
	return t, nil
}
