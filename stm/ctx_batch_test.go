package stm_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/orderedstm/ostm/stm"
)

// ctrCodec is a tiny codec for the ctx-variant tests: the payload is a
// little-endian u32 increment applied to one counter Var.
type ctrCodec struct{ counter *stm.Var }

func (c ctrCodec) Encode(payload any) ([]byte, error) {
	n, ok := payload.(uint32)
	if !ok {
		return nil, fmt.Errorf("unexpected payload %T", payload)
	}
	return binary.LittleEndian.AppendUint32(nil, n), nil
}

func (c ctrCodec) Decode(data []byte) (stm.Body, error) {
	if len(data) != 4 {
		return nil, fmt.Errorf("bad payload length %d", len(data))
	}
	n := uint64(binary.LittleEndian.Uint32(data))
	v := c.counter
	return func(tx stm.Tx, _ int) { tx.Write(v, tx.Read(v)+n) }, nil
}

// TestSubmitEncodedCtx: the encoded single-submit honors its context
// exactly like SubmitCtx — a pre-canceled context refuses the
// submission before an age is assigned, a live one accepts it, and the
// decoded body's effect lands.
func TestSubmitEncodedCtx(t *testing.T) {
	counter := stm.NewVar(0)
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OUL, Workers: 2, Codec: ctrCodec{counter}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := ctrCodec{counter}.Encode(uint32(7))
	if err != nil {
		t.Fatal(err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.SubmitEncodedCtx(canceled, data); !errors.Is(err, stm.ErrCanceled) {
		t.Fatalf("pre-canceled ctx: got %v, want ErrCanceled", err)
	}
	if got := p.Submitted(); got != 0 {
		t.Fatalf("refused submission consumed an age: %d", got)
	}

	tk, err := p.SubmitEncodedCtx(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := counter.Load(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitBatchCtxCancelDuringBackpressure: a batch parked in the
// backpressure wait is cut short by cancellation — the tickets for the
// prefix that made it in before the park are returned alongside the
// wrapped ErrCanceled, the unposted suffix consumes no ages, and the
// stream keeps working afterwards.
func TestSubmitBatchCtxCancelDuringBackpressure(t *testing.T) {
	p, gate := gatePipeline(t, 2)
	capacity := p.Config().Capacity
	var tks []*stm.Ticket
	// Leave two free slots so the batch below posts a prefix and then
	// parks mid-batch.
	for p.InFlight() < capacity-2 {
		tk, err := p.Submit(func(stm.Tx, int) {})
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	submitted := p.Submitted()

	batch := make([]stm.Body, 5)
	for i := range batch {
		batch[i] = func(stm.Tx, int) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	type res struct {
		tks []*stm.Ticket
		err error
	}
	done := make(chan res, 1)
	go func() {
		out, err := p.SubmitBatchCtx(ctx, batch)
		done <- res{out, err}
	}()
	select {
	case r := <-done:
		t.Fatalf("SubmitBatchCtx returned (%d tickets, %v) while the pipeline was full", len(r.tks), r.err)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	var r res
	select {
	case r = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("canceled SubmitBatchCtx did not return")
	}
	if !errors.Is(r.err, stm.ErrCanceled) || !errors.Is(r.err, context.Canceled) {
		t.Fatalf("canceled batch returned %v, want ErrCanceled wrapping context.Canceled", r.err)
	}
	if len(r.tks) != 2 {
		t.Fatalf("batch returned %d accepted tickets, want the 2 that fit before the park", len(r.tks))
	}
	if got := p.Submitted(); got != submitted+2 {
		t.Fatalf("ages consumed: %d, want %d (prefix only)", got, submitted+2)
	}

	// The accepted prefix commits once the gate opens — an accepted age
	// is never withdrawn.
	close(gate)
	for _, tk := range append(tks, r.tks...) {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// And the stream still accepts a full batch.
	out, err := p.SubmitBatchCtx(context.Background(), batch)
	if err != nil || len(out) != len(batch) {
		t.Fatalf("post-cancel batch: %d tickets, %v", len(out), err)
	}
	for _, tk := range out {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitEncodedBatchCtx: the encoded batch decodes every element
// up front, preserves element order in age order, and a pre-canceled
// context refuses the whole batch with no ages consumed.
func TestSubmitEncodedBatchCtx(t *testing.T) {
	counter := stm.NewVar(0)
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OUL, Workers: 2, Codec: ctrCodec{counter}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	datas := make([][]byte, n)
	var want uint64
	for i := range datas {
		datas[i] = binary.LittleEndian.AppendUint32(nil, uint32(i+1))
		want += uint64(i + 1)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if out, err := p.SubmitEncodedBatchCtx(canceled, datas); !errors.Is(err, stm.ErrCanceled) || len(out) != 0 {
		t.Fatalf("pre-canceled batch: %d tickets, %v", len(out), err)
	}
	if got := p.Submitted(); got != 0 {
		t.Fatalf("refused batch consumed ages: %d", got)
	}

	out, err := p.SubmitEncodedBatchCtx(context.Background(), datas)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d tickets, want %d", len(out), n)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Age() != out[i-1].Age()+1 {
			t.Fatalf("batch ages not consecutive: %d then %d", out[i-1].Age(), out[i].Age())
		}
	}
	for _, tk := range out {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := counter.Load(); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
