package stm_test

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/wal"
)

// typedTransferCodec builds the typed durability bridge for the
// transfer workload: the handler returns the sender's post-transfer
// balance, so every age has a typed result that depends on the entire
// committed prefix — replay must re-derive each one exactly.
func typedTransferCodec(accounts []stm.TVar[uint64]) *stm.TypedCodec[transfer, uint64] {
	return stm.CodecOf(
		func(t transfer) ([]byte, error) {
			var b [8]byte
			binary.LittleEndian.PutUint32(b[0:4], t.from)
			binary.LittleEndian.PutUint32(b[4:8], t.to)
			return b[:], nil
		},
		func(data []byte) (transfer, error) {
			if len(data) != 8 {
				return transfer{}, fmt.Errorf("bad transfer payload length %d", len(data))
			}
			tr := transfer{
				from: binary.LittleEndian.Uint32(data[0:4]),
				to:   binary.LittleEndian.Uint32(data[4:8]),
			}
			if int(tr.from) >= len(accounts) || int(tr.to) >= len(accounts) {
				return transfer{}, fmt.Errorf("transfer %d→%d out of range", tr.from, tr.to)
			}
			return tr, nil
		},
		func(tr transfer) stm.Func[uint64] {
			return func(tx stm.Tx, age int) uint64 {
				amt := uint64(age%5) + 1
				bf := stm.ReadT(tx, &accounts[tr.from])
				if bf >= amt && tr.from != tr.to {
					stm.WriteT(tx, &accounts[tr.from], bf-amt)
					stm.WriteT(tx, &accounts[tr.to], stm.ReadT(tx, &accounts[tr.to])+amt)
					return bf - amt
				}
				return bf
			}
		},
	)
}

func newTypedAccounts(n int, balance uint64) []stm.TVar[uint64] {
	vs := stm.NewTVars[uint64](n)
	for i := range vs {
		vs[i].Store(balance)
	}
	return vs
}

// typedFold is the model oracle for the typed workload: the
// sequential fold over plain integers, returning both final balances
// and the per-age typed results.
func typedFold(n int, firstAge uint64) (balances []uint64, results []uint64) {
	balances = make([]uint64, durableAccounts)
	for i := range balances {
		balances[i] = 1000
	}
	results = make([]uint64, n)
	for i := 0; i < n; i++ {
		age := firstAge + uint64(i)
		tr := transferFor(age)
		amt := age%5 + 1
		if balances[tr.from] >= amt && tr.from != tr.to {
			balances[tr.from] -= amt
			balances[tr.to] += amt
		}
		results[i] = balances[tr.from]
	}
	return balances, results
}

func typedState(accounts []stm.TVar[uint64]) []uint64 {
	out := make([]uint64, len(accounts))
	for i := range accounts {
		out[i] = accounts[i].Load()
	}
	return out
}

// TestTypedDurableRoundTrip, for every ordered algorithm: stream
// typed requests through SubmitPayloadT into a WAL while concurrently
// snapshotting the directory mid-stream (the crash image), check
// every live typed result against the sequential fold, then recover
// the snapshot and replay it through SubmitEncodedT of a fresh
// pipeline — the recovered typed results and state must equal the
// sequential fold of the surviving prefix.
func TestTypedDurableRoundTrip(t *testing.T) {
	n := 3000
	if testing.Short() {
		n = 600
	}
	_, wantResults := typedFold(n, 0)
	for _, alg := range stm.OrderedAlgorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			dir := t.TempDir()
			snapDir := t.TempDir()

			accounts := newTypedAccounts(durableAccounts, 1000)
			w, err := wal.Create(dir, 0, wal.Options{SyncEveryN: 4, SegmentBytes: 4096})
			if err != nil {
				t.Fatal(err)
			}
			p, err := stm.NewPipeline(stm.Config{
				Algorithm: alg,
				Workers:   4,
				WAL:       w,
				Codec:     typedTransferCodec(accounts),
			})
			if err != nil {
				t.Fatal(err)
			}
			var snap sync.Once
			tks := make([]*stm.TicketOf[uint64], n)
			for age := 0; age < n; age++ {
				tk, err := stm.SubmitPayloadT[transfer, uint64](p, transferFor(uint64(age)))
				if err != nil {
					t.Fatal(err)
				}
				tks[age] = tk
				if age == n/2 {
					// Mid-stream crash image: wait for this age (so the
					// prefix is non-trivial), then copy the live log;
					// whatever the group commits already flushed survives
					// and the torn tail (if any) is truncated at recovery.
					if err := tk.Wait(); err != nil {
						t.Fatal(err)
					}
					snap.Do(func() { copyDirLive(t, dir, snapDir) })
				}
			}
			for age, tk := range tks {
				got, err := tk.Value()
				if err != nil {
					t.Fatalf("age %d: %v", age, err)
				}
				if got != wantResults[age] {
					t.Fatalf("live typed result at age %d = %d, want %d", age, got, wantResults[age])
				}
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			// Recover the crash image and replay through the typed entry.
			rec, err := wal.Recover(snapDir)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Count() == 0 {
				t.Fatal("snapshot recovered no records (crash point too early?)")
			}
			recAccounts := newTypedAccounts(durableAccounts, 1000)
			rp, err := stm.NewPipeline(stm.Config{
				Algorithm: alg,
				Workers:   4,
				Codec:     typedTransferCodec(recAccounts),
				FirstAge:  rec.First(),
			})
			if err != nil {
				t.Fatal(err)
			}
			rtks := make([]*stm.TicketOf[uint64], 0, rec.Count())
			if err := rec.Replay(func(age uint64, payload []byte) error {
				tk, err := stm.SubmitEncodedT[transfer, uint64](rp, payload)
				if err == nil {
					rtks = append(rtks, tk)
				}
				return err
			}); err != nil {
				t.Fatal(err)
			}
			for i, tk := range rtks {
				got, err := tk.Value()
				if err != nil {
					t.Fatalf("replayed age %d: %v", i, err)
				}
				if got != wantResults[i] {
					t.Fatalf("recovered typed result at age %d = %d, want %d (replay diverged)", i, got, wantResults[i])
				}
			}
			if err := rp.Close(); err != nil {
				t.Fatal(err)
			}
			wantBal, _ := typedFold(rec.Count(), 0)
			if !equalState(typedState(recAccounts), wantBal) {
				t.Fatalf("recovered state diverged from the sequential fold of %d records", rec.Count())
			}
		})
	}
}

// TestSubmitPayloadTCodecMismatch: the typed submission entry points
// must reject a pipeline whose codec is not the matching TypedCodec
// instantiation, and SubmitFunc must reject durable pipelines.
func TestSubmitPayloadTCodecMismatch(t *testing.T) {
	accounts := newAccounts(durableAccounts, 1000)
	dir := filepath.Join(t.TempDir(), "wal")
	w, err := wal.Create(dir, 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	p, err := stm.NewPipeline(stm.Config{
		Algorithm: stm.OUL, Workers: 2,
		WAL: w, Codec: tfCodec{accounts: accounts},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := stm.SubmitPayloadT[transfer, uint64](p, transferFor(0)); err == nil {
		t.Fatal("SubmitPayloadT must reject a non-TypedCodec pipeline")
	}
	if _, err := stm.SubmitEncodedT[transfer, uint64](p, make([]byte, 8)); err == nil {
		t.Fatal("SubmitEncodedT must reject a non-TypedCodec pipeline")
	}
	if _, err := stm.SubmitFunc(p, func(stm.Tx, int) uint64 { return 0 }); err != stm.ErrPayloadRequired {
		t.Fatalf("SubmitFunc on a durable pipeline returned %v, want ErrPayloadRequired", err)
	}
}
