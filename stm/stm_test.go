package stm_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/orderedstm/ostm/stm"
)

func TestAlgorithmStringsRoundTrip(t *testing.T) {
	for _, a := range stm.Algorithms() {
		s := a.String()
		if s == "" || strings.HasPrefix(s, "Algorithm(") {
			t.Fatalf("algorithm %d lacks a name", int(a))
		}
		got, err := stm.ParseAlgorithm(s)
		if err != nil || got != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := stm.ParseAlgorithm("NotAnAlgorithm"); err == nil {
		t.Fatal("expected parse error")
	}
	if !strings.HasPrefix(stm.Algorithm(97).String(), "Algorithm(") {
		t.Fatal("out-of-range algorithm must stringify defensively")
	}
}

func TestOrderedPredicate(t *testing.T) {
	ordered := map[stm.Algorithm]bool{
		stm.Sequential: true, stm.OWB: true, stm.OUL: true, stm.OULSteal: true,
		stm.TL2: false, stm.OrderedTL2: true, stm.NOrec: false, stm.OrderedNOrec: true,
		stm.UndoLogVis: false, stm.OrderedUndoLogVis: true,
		stm.UndoLogInvis: false, stm.OrderedUndoLogInvis: true, stm.STMLite: true,
	}
	for a, want := range ordered {
		if a.Ordered() != want {
			t.Fatalf("%v.Ordered() = %v, want %v", a, a.Ordered(), want)
		}
	}
	for _, a := range stm.OrderedAlgorithms() {
		if !a.Ordered() {
			t.Fatalf("OrderedAlgorithms contains unordered %v", a)
		}
	}
}

func TestFloatTVar(t *testing.T) {
	v := stm.NewTVar[float64](0)
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	var roundTrip float64
	if _, err := ex.Run(1, func(tx stm.Tx, age int) {
		stm.WriteT(tx, v, 3.5)
		stm.WriteT(tx, v, stm.ReadT(tx, v)+1.25)
		roundTrip = stm.ReadT(tx, v)
	}); err != nil {
		t.Fatal(err)
	}
	if roundTrip != 4.75 || v.Load() != 4.75 {
		t.Fatalf("float plumbing: %v / %v", roundTrip, v.Load())
	}
	v.Store(math.Copysign(0, -1))
	if !math.Signbit(v.Load()) {
		t.Fatal("negative zero lost in bit conversion")
	}
	f := func(x float64) bool {
		v.Store(x)
		got := v.Load()
		return got == x || (math.IsNaN(x) && math.IsNaN(got))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmTextMarshaling(t *testing.T) {
	for _, a := range stm.Algorithms() {
		text, err := a.MarshalText()
		if err != nil {
			t.Fatalf("%v.MarshalText: %v", a, err)
		}
		if string(text) != a.String() {
			t.Fatalf("MarshalText(%v) = %q, want %q", a, text, a.String())
		}
		var got stm.Algorithm
		if err := got.UnmarshalText(text); err != nil || got != a {
			t.Fatalf("UnmarshalText(%q) = %v, %v", text, got, err)
		}
		// Config files should not be case brittle.
		if err := got.UnmarshalText([]byte(strings.ToLower(a.String()))); err != nil || got != a {
			t.Fatalf("case-insensitive UnmarshalText(%q) = %v, %v", strings.ToLower(a.String()), got, err)
		}
	}
	if _, err := stm.Algorithm(97).MarshalText(); err == nil {
		t.Fatal("out-of-range MarshalText must error")
	}
	var a stm.Algorithm
	if err := a.UnmarshalText([]byte("NotAnAlgorithm")); err == nil {
		t.Fatal("UnmarshalText of an unknown name must error")
	}
}

func TestResultHelpers(t *testing.T) {
	var r stm.Result
	if r.Throughput() != 0 {
		t.Fatal("zero result throughput must be 0")
	}
	f := &stm.Fault{Age: 12, Value: "x"}
	if !strings.Contains(f.Error(), "12") {
		t.Fatalf("fault error lacks age: %q", f.Error())
	}
}

func TestExecutorConfigDefaults(t *testing.T) {
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.OUL})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ex.Config()
	if cfg.Workers != 1 || cfg.MaxReaders != 40 || cfg.TableBits == 0 || cfg.Window < 2 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

// TestSTMLiteThreadAccounting: the paper counts the commit manager as
// one of STMLite's threads, so a 1-worker STMLite run must still
// complete (the executor keeps at least one transaction worker).
func TestSTMLiteThreadAccounting(t *testing.T) {
	v := stm.NewVar(0)
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.STMLite, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run(50, func(tx stm.Tx, age int) {
		tx.Write(v, tx.Read(v)+1)
	})
	if err != nil || res.N != 50 || v.Load() != 50 {
		t.Fatalf("res=%+v err=%v v=%d", res, err, v.Load())
	}
}

// TestVarQuiescentAccess covers the non-transactional accessors.
func TestVarQuiescentAccess(t *testing.T) {
	v := stm.NewVar(7)
	if v.Load() != 7 {
		t.Fatal("initial load")
	}
	v.Store(9)
	if !v.CAS(9, 10) || v.CAS(9, 11) {
		t.Fatal("CAS semantics")
	}
	vs := stm.NewVars(3)
	for i := range vs {
		if vs[i].Load() != 0 {
			t.Fatal("NewVars must zero")
		}
	}
}
