package stm_test

import (
	"errors"
	"sync"
	"testing"

	"github.com/orderedstm/ostm/stm"
)

// TestSubmitFuncTypedDeterminism is the typed streaming oracle: for
// every ordered algorithm, value-returning transactions submitted
// through SubmitFunc yield per-ticket results and final memory
// identical to executing the same Funcs sequentially in age order.
func TestSubmitFuncTypedDeterminism(t *testing.T) {
	n := 6000
	if testing.Short() {
		n = 1200
	}
	const lanes = 8

	// fnFor builds the age's Func: an order-sensitive fold over one
	// lane, returning the folded value (which depends on every prior
	// transaction of that lane — any ordering or latching error shows
	// up in some ticket's value).
	fnFor := func(lanesV []stm.TVar[uint64], age int) stm.Func[uint64] {
		return func(tx stm.Tx, _ int) uint64 {
			v := &lanesV[age%lanes]
			nv := stm.ReadT(tx, v)*3 + uint64(age)
			stm.WriteT(tx, v, nv)
			return nv
		}
	}

	// Sequential oracle.
	wantVals := make([]uint64, n)
	wantState := make([]uint64, lanes)
	{
		vars := stm.NewTVars[uint64](lanes)
		ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.Sequential})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(n, func(tx stm.Tx, age int) {
			wantVals[age] = fnFor(vars, age)(tx, age)
		}); err != nil {
			t.Fatal(err)
		}
		for i := range vars {
			wantState[i] = vars[i].Load()
		}
	}

	for _, alg := range stm.OrderedAlgorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			vars := stm.NewTVars[uint64](lanes)
			p, err := stm.NewPipeline(stm.Config{Algorithm: alg, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			tickets := make([]*stm.TicketOf[uint64], n)
			for age := 0; age < n; age++ {
				tk, err := stm.SubmitFunc(p, fnFor(vars, age))
				if err != nil {
					t.Fatal(err)
				}
				if tk.Age() != uint64(age) {
					t.Fatalf("age %d assigned %d", age, tk.Age())
				}
				tickets[age] = tk
			}
			for age, tk := range tickets {
				got, err := tk.Value()
				if err != nil {
					t.Fatalf("age %d: %v", age, err)
				}
				if got != wantVals[age] {
					t.Fatalf("%v age %d value %d, want %d (speculative value leaked?)",
						alg, age, got, wantVals[age])
				}
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			for i := range vars {
				if vars[i].Load() != wantState[i] {
					t.Fatalf("lane %d state %d, want %d", i, vars[i].Load(), wantState[i])
				}
			}
		})
	}
}

// TestValueLatchDiscardsAbortedAttempts is the latch oracle required
// by the redesign: under heavy single-counter contention, speculative
// attempts read stale counter values and compute results that must
// never surface. Every ticket's value has to equal the sequential
// fold (age i reads exactly i), even though aborted attempts computed
// other values along the way; the abort counter confirms speculation
// actually happened.
func TestValueLatchDiscardsAbortedAttempts(t *testing.T) {
	n := 20000
	if testing.Short() {
		n = 4000
	}
	counter := stm.NewTVar[uint64](0)
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OUL, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	fn := func(tx stm.Tx, age int) uint64 {
		v := stm.ReadT(tx, counter)
		stm.WriteT(tx, counter, v+1)
		return v
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	vals := make([]uint64, n)
	tks := make([]*stm.TicketOf[uint64], n)
	for i := 0; i < n; i++ {
		tk, err := stm.SubmitFunc(p, fn)
		if err != nil {
			t.Fatal(err)
		}
		tks[i] = tk
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = tks[i].Value()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("age %d: %v", i, errs[i])
		}
		if vals[i] != uint64(i) {
			t.Fatalf("age %d latched %d — an aborted attempt's value escaped", i, vals[i])
		}
	}
	aborts := p.Stats().TotalAborts()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if counter.Load() != uint64(n) {
		t.Fatalf("counter %d, want %d", counter.Load(), n)
	}
	if aborts == 0 {
		t.Logf("note: no aborts occurred; the latch rule was not stressed this run")
	}
}

// TestTicketOfErrAndDone: the typed ticket inherits the non-blocking
// surface of Ticket.
func TestTicketOfErrAndDone(t *testing.T) {
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OUL, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tk, err := stm.SubmitFunc(p, func(tx stm.Tx, age int) int64 { return int64(age) + 40 })
	if err != nil {
		t.Fatal(err)
	}
	<-tk.Done()
	if werr, resolved := tk.Err(); !resolved || werr != nil {
		t.Fatalf("Err() = %v, %v after Done", werr, resolved)
	}
	v, err := tk.Value()
	if err != nil || v != 40 {
		t.Fatalf("Value() = %d, %v", v, err)
	}
}

// TestStoppedSentinel: a pipeline stopped by a fault resolves
// bystander tickets with *Stopped, which must match ErrStopped via
// errors.Is, expose the fault via errors.As, and be observable
// through Err/Done without blocking.
func TestStoppedSentinel(t *testing.T) {
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OUL, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	// A bystander parked behind the faulting age (its body blocks until
	// the fault has landed, so it cannot commit first).
	bystander, err := stm.SubmitFunc(p, func(tx stm.Tx, age int) uint64 {
		<-gate
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	faulty, err := p.Submit(func(tx stm.Tx, age int) { panic(boom) })
	if err != nil {
		t.Fatal(err)
	}
	ferr := faulty.Wait()
	var f *stm.Fault
	if !errors.As(ferr, &f) {
		t.Fatalf("faulting ticket resolved with %v, want *Fault", ferr)
	}
	close(gate)

	// The bystander resolves with *Stopped; Done closes and Err peeks
	// without blocking.
	<-bystander.Done()
	serr, resolved := bystander.Err()
	if !resolved {
		t.Fatal("Err() must report resolution after Done closes")
	}
	if !errors.Is(serr, stm.ErrStopped) {
		t.Fatalf("errors.Is(%v, ErrStopped) = false", serr)
	}
	if !errors.Is(serr, boom) {
		t.Fatalf("Stopped must unwrap to the fault cause, got %v", serr)
	}
	if _, verr := bystander.Value(); !errors.Is(verr, stm.ErrStopped) {
		t.Fatalf("Value() error %v must match ErrStopped", verr)
	}
	// Submit after the stop reports Stopped too.
	if _, err := p.Submit(func(stm.Tx, int) {}); !errors.Is(err, stm.ErrStopped) {
		t.Fatalf("post-stop Submit error %v must match ErrStopped", err)
	}
	if err := p.Close(); err == nil {
		t.Fatal("Close after fault must report it")
	}
}
