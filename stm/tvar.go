package stm

import (
	"fmt"
	"math"
	"unsafe"

	"github.com/orderedstm/ostm/internal/meta"
)

// This file is the typed layer over the word-level core: TVar[T] maps
// a fixed-size Go value onto one or more transactional words, and
// ReadT/WriteT compile the typed accesses down to the existing
// Tx.Read/Tx.Write word operations. The engines underneath never see
// types — concurrency control, ordering and durability all keep
// operating on Vars — so the typed layer is a strict superset of the
// word API, not a parallel implementation.
//
// Word-layout contract (see DESIGN.md §10): a scalar TVar[T] embeds
// its single word inline (so a typed access costs exactly one cache
// fetch, like the word API — no pointer chase through a side array),
// and a Wordable TVar[T] owns NumWords consecutive Vars in one
// contiguous backing allocation. Scalars map as: uint64 verbatim,
// int64 two's-complement, float64 IEEE-754 bits (bit-exact round
// trip, NaN payloads included), bool 0/1; a Wordable value occupies
// its NumWords words in the order PutWords fills them. Engines lock
// and version individual words: a multi-word TVar is consistent
// inside transactions (the engine's conflict detection covers every
// word), but quiescent Load/Store of multi-word values is only
// meaningful on quiescent state, exactly like Var.Load.

// Wordable is implemented by fixed-size multi-word value types that
// want to live in a TVar. The pointer type *T must implement it (the
// methods rewrite the receiver in SetWords); NumWords must return the
// same constant for every value of the type, and PutWords/SetWords
// must be exact inverses over slices of that length.
type Wordable interface {
	// NumWords returns the fixed number of 64-bit words the type
	// occupies. It is called on the zero value at TVar construction
	// and must not depend on the receiver's contents.
	NumWords() int
	// PutWords serializes the value into dst (len = NumWords).
	PutWords(dst []uint64)
	// SetWords deserializes the value from src (len = NumWords).
	SetWords(src []uint64)
}

// tvarKind discriminates the supported TVar element types; resolved
// once at construction so the per-access path is a switch on a small
// integer, not an interface dispatch.
type tvarKind uint8

const (
	tvarInvalid tvarKind = iota // zero TVar: not constructed
	tvarUint64
	tvarInt64
	tvarFloat64
	tvarBool
	tvarWordable
)

// TVar is a typed transactional variable: a T stored across one or
// more word-level Vars. Create with NewTVar/NewTVars; access inside
// transactions with ReadT/WriteT and outside (quiescent state only)
// with Load/Store. The zero TVar is unusable — typed accesses panic
// until the TVar is constructed — and, like Var, a TVar must not be
// copied after first use (scalar kinds embed their word in place).
//
// T must be one of uint64, int64, float64, bool, or a value type
// whose pointer implements Wordable. The set is deliberately closed
// over fixed-size word-codable types: the engines' unit of conflict
// detection is the 64-bit word, and a type that cannot commit to a
// fixed word count (strings, slices, maps) has no deterministic
// layout for the WAL to replay.
type TVar[T any] struct {
	kind tvarKind
	nw   uint32
	w    Var  // scalar kinds: the word, embedded in place
	ext  *Var // Wordable kinds: first of nw contiguous words (nil for scalars)
}

// word returns the i-th backing word of a Wordable TVar; the words
// were allocated as one contiguous NewVars run, so this is plain
// same-allocation pointer arithmetic.
func (v *TVar[T]) word(i int) *Var {
	return (*Var)(unsafe.Add(unsafe.Pointer(v.ext), uintptr(i)*unsafe.Sizeof(Var{})))
}

// tvarKindFor resolves T's kind and word count, panicking on
// unsupported types — construction is the single validation point, so
// every constructed TVar's accesses are infallible.
func tvarKindFor[T any]() (tvarKind, int) {
	var z T
	switch any(z).(type) {
	case uint64:
		return tvarUint64, 1
	case int64:
		return tvarInt64, 1
	case float64:
		return tvarFloat64, 1
	case bool:
		return tvarBool, 1
	}
	if _, ok := any(z).(Wordable); ok {
		// Value-receiver methods satisfy the interface through *T's
		// method set too, but SetWords would then mutate a copy: every
		// read would silently return the zero T. Reject at
		// construction — this is the validation point.
		panic(fmt.Sprintf("stm: %T implements Wordable with value receivers; SetWords must use a pointer receiver to deserialize in place", z))
	}
	if w, ok := any(&z).(Wordable); ok {
		n := w.NumWords()
		if n <= 0 {
			panic(fmt.Sprintf("stm: %T.NumWords() = %d; must be positive", z, n))
		}
		return tvarWordable, n
	}
	panic(fmt.Sprintf("stm: unsupported TVar type %T (want uint64, int64, float64, bool, or *%T implementing stm.Wordable)", z, z))
}

// NewTVar returns a fresh typed transactional variable initialized to
// x. It panics if T is not a supported element type.
func NewTVar[T any](x T) *TVar[T] {
	kind, n := tvarKindFor[T]()
	v := &TVar[T]{kind: kind, nw: uint32(n)}
	if kind == tvarWordable {
		backing := NewVars(n)
		v.ext = &backing[0]
	} else {
		meta.InitVar(&v.w, 0)
	}
	v.Store(x)
	return v
}

// NewTVars returns n zero-valued typed variables allocated
// contiguously (the typed equivalent of NewVars: &vs[i] is the
// handle, and neighboring TVars are cache-local — scalar kinds embed
// their words in the returned array itself; Wordable kinds share one
// contiguous word backing).
func NewTVars[T any](n int) []TVar[T] {
	kind, w := tvarKindFor[T]()
	vs := make([]TVar[T], n)
	if kind == tvarWordable {
		backing := NewVars(n * w)
		for i := range vs {
			vs[i] = TVar[T]{kind: kind, nw: uint32(w), ext: &backing[i*w]}
		}
		return vs
	}
	for i := range vs {
		vs[i].kind, vs[i].nw = kind, 1
		meta.InitVar(&vs[i].w, 0)
	}
	return vs
}

// NumWords returns how many word-level Vars the TVar occupies.
func (v *TVar[T]) NumWords() int { return int(v.nw) }

// Vars returns the TVar's backing words as handles, in layout order —
// the bridge to word-level APIs that take *Var: access declarations
// for sharded routing (stm.Touches(v.Vars()...)), lock-striping
// inspection, debugging. The returned slice is freshly allocated;
// callers building zero-alloc submit paths should cache it.
func (v *TVar[T]) Vars() []*Var {
	if v.kind == tvarInvalid {
		panic("stm: TVar used before NewTVar/NewTVars")
	}
	if v.kind != tvarWordable {
		return []*Var{&v.w}
	}
	out := make([]*Var, v.nw)
	for i := range out {
		out[i] = v.word(i)
	}
	return out
}

// The scalar accessors dispatch on the kind resolved at construction
// and reinterpret through unsafe.Pointer instead of an interface type
// switch: construction proved T's dynamic identity (v.kind ==
// tvarUint64 holds only when T is exactly uint64, and so on), so each
// cast is an exact-type reinterpretation — and unlike `any(&out)`, it
// does not make the local escape, keeping ReadT/WriteT at zero
// allocations, same as the word ops they compile down to. The
// Wordable paths live in separate functions so their interface
// conversions cannot drag the scalar locals onto the heap (escape
// analysis is flow-insensitive within a function).

// ReadT returns v's value in the transaction's view, composed from
// word-level Tx.Read operations. Scalar kinds are allocation-free;
// Wordable kinds stage through a scratch slice.
//
// The 8-byte scalar kinds (uint64, int64, float64) share one
// branch: their word mapping is a pure bit reinterpretation (int64 is
// two's-complement, Float64frombits is the identity on bits), so the
// fast path is small enough for the compiler to inline into the
// transaction body — a typed access costs the same interface call the
// word API pays, plus one predicted branch.
func ReadT[T any](tx Tx, v *TVar[T]) T {
	if uint8(v.kind)-uint8(tvarUint64) <= uint8(tvarFloat64)-uint8(tvarUint64) {
		w := tx.Read(&v.w)
		return *(*T)(unsafe.Pointer(&w))
	}
	return readTSlow(tx, v)
}

// readTSlow handles the bool, Wordable and not-constructed kinds.
func readTSlow[T any](tx Tx, v *TVar[T]) T {
	var out T
	switch v.kind {
	case tvarBool:
		*(*bool)(unsafe.Pointer(&out)) = tx.Read(&v.w) != 0
		return out
	case tvarWordable:
		return readWordable(tx, v)
	default:
		panic("stm: TVar used before NewTVar/NewTVars")
	}
}

// readWordable is ReadT's multi-word path.
func readWordable[T any](tx Tx, v *TVar[T]) T {
	var out T
	buf := make([]uint64, v.nw)
	for i := range buf {
		buf[i] = tx.Read(v.word(i))
	}
	any(&out).(Wordable).SetWords(buf)
	return out
}

// WriteT updates v in the transaction's view, decomposed into
// word-level Tx.Write operations (see ReadT for the fast-path shape).
func WriteT[T any](tx Tx, v *TVar[T], x T) {
	if uint8(v.kind)-uint8(tvarUint64) <= uint8(tvarFloat64)-uint8(tvarUint64) {
		tx.Write(&v.w, *(*uint64)(unsafe.Pointer(&x)))
		return
	}
	writeTSlow(tx, v, x)
}

// writeTSlow handles the bool, Wordable and not-constructed kinds.
func writeTSlow[T any](tx Tx, v *TVar[T], x T) {
	switch v.kind {
	case tvarBool:
		var w uint64
		if *(*bool)(unsafe.Pointer(&x)) {
			w = 1
		}
		tx.Write(&v.w, w)
	case tvarWordable:
		writeWordable(tx, v, x)
	default:
		panic("stm: TVar used before NewTVar/NewTVars")
	}
}

// writeWordable is WriteT's multi-word path.
func writeWordable[T any](tx Tx, v *TVar[T], x T) {
	buf := make([]uint64, v.nw)
	any(&x).(Wordable).PutWords(buf)
	for i := range buf {
		tx.Write(v.word(i), buf[i])
	}
}

// AddT adds delta to the numeric TVar transactionally and returns the
// new value — the read-modify-write idiom as one call (the typed
// successor of the retired AddFloat64 helper). It supports the
// numeric scalar kinds (uint64, int64, float64); bool and Wordable
// TVars panic, as the zero TVar does.
func AddT[T any](tx Tx, v *TVar[T], delta T) T {
	var nw uint64
	switch v.kind {
	// The delta reinterpret stays inside the numeric arms: kind proves
	// T is 8 bytes there, and a bool T must not be read as a word.
	case tvarUint64, tvarInt64:
		// Two's complement makes unsigned word addition exact for both.
		nw = tx.Read(&v.w) + *(*uint64)(unsafe.Pointer(&delta))
	case tvarFloat64:
		nw = math.Float64bits(math.Float64frombits(tx.Read(&v.w)) + *(*float64)(unsafe.Pointer(&delta)))
	default:
		panic("stm: AddT requires a numeric TVar (uint64, int64, float64)")
	}
	tx.Write(&v.w, nw)
	var out T
	*(*uint64)(unsafe.Pointer(&out)) = nw
	return out
}

// Load reads the TVar's quiescent value (outside transactions; the
// same quiescence caveat as Var.Load, and multi-word values are only
// consistent when no transaction is concurrently writing them).
func (v *TVar[T]) Load() T {
	var out T
	switch v.kind {
	case tvarUint64:
		*(*uint64)(unsafe.Pointer(&out)) = v.w.Load()
	case tvarInt64:
		*(*int64)(unsafe.Pointer(&out)) = int64(v.w.Load())
	case tvarFloat64:
		*(*float64)(unsafe.Pointer(&out)) = math.Float64frombits(v.w.Load())
	case tvarBool:
		*(*bool)(unsafe.Pointer(&out)) = v.w.Load() != 0
	case tvarWordable:
		return loadWordable(v)
	default:
		panic("stm: TVar used before NewTVar/NewTVars")
	}
	return out
}

func loadWordable[T any](v *TVar[T]) T {
	var out T
	buf := make([]uint64, v.nw)
	for i := range buf {
		buf[i] = v.word(i).Load()
	}
	any(&out).(Wordable).SetWords(buf)
	return out
}

// Store sets the TVar's quiescent value.
func (v *TVar[T]) Store(x T) {
	switch v.kind {
	case tvarUint64:
		v.w.Store(*(*uint64)(unsafe.Pointer(&x)))
	case tvarInt64:
		v.w.Store(uint64(*(*int64)(unsafe.Pointer(&x))))
	case tvarFloat64:
		v.w.Store(math.Float64bits(*(*float64)(unsafe.Pointer(&x))))
	case tvarBool:
		var w uint64
		if *(*bool)(unsafe.Pointer(&x)) {
			w = 1
		}
		v.w.Store(w)
	case tvarWordable:
		storeWordable(v, x)
	default:
		panic("stm: TVar used before NewTVar/NewTVars")
	}
}

func storeWordable[T any](v *TVar[T], x T) {
	buf := make([]uint64, v.nw)
	any(&x).(Wordable).PutWords(buf)
	for i := range buf {
		v.word(i).Store(buf[i])
	}
}
