package stm_test

import (
	"math"
	"testing"

	"github.com/orderedstm/ostm/stm"
)

// point is the test's multi-word Wordable: two int64 coordinates in
// two words.
type point struct{ X, Y int64 }

func (*point) NumWords() int { return 2 }
func (p *point) PutWords(dst []uint64) {
	dst[0], dst[1] = uint64(p.X), uint64(p.Y)
}
func (p *point) SetWords(src []uint64) {
	p.X, p.Y = int64(src[0]), int64(src[1])
}

// valueRecvPair implements Wordable with value receivers — a natural
// mistake whose SetWords mutates a copy; NewTVar must reject it.
type valueRecvPair struct{ a, b uint64 }

func (valueRecvPair) NumWords() int           { return 2 }
func (p valueRecvPair) PutWords(dst []uint64) { dst[0], dst[1] = p.a, p.b }
func (p valueRecvPair) SetWords(src []uint64) { p.a, p.b = src[0], src[1] }

func TestTVarScalarRoundTrips(t *testing.T) {
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.Sequential})
	if err != nil {
		t.Fatal(err)
	}

	u := stm.NewTVar[uint64](42)
	i := stm.NewTVar[int64](-7)
	f := stm.NewTVar[float64](math.Copysign(0, -1))
	b := stm.NewTVar[bool](true)
	if u.Load() != 42 || i.Load() != -7 || !math.Signbit(f.Load()) || !b.Load() {
		t.Fatalf("initial loads: %v %v %v %v", u.Load(), i.Load(), f.Load(), b.Load())
	}

	var gotU uint64
	var gotI int64
	var gotF float64
	var gotB bool
	if _, err := ex.Run(1, func(tx stm.Tx, _ int) {
		stm.WriteT(tx, u, stm.ReadT(tx, u)+1)
		stm.WriteT(tx, i, stm.ReadT(tx, i)*-3)
		stm.WriteT(tx, f, math.Inf(-1))
		stm.WriteT(tx, b, !stm.ReadT(tx, b))
		gotU, gotI, gotF, gotB = stm.ReadT(tx, u), stm.ReadT(tx, i), stm.ReadT(tx, f), stm.ReadT(tx, b)
	}); err != nil {
		t.Fatal(err)
	}
	if gotU != 43 || gotI != 21 || !math.IsInf(gotF, -1) || gotB {
		t.Fatalf("in-txn reads: %v %v %v %v", gotU, gotI, gotF, gotB)
	}
	if u.Load() != 43 || i.Load() != 21 || !math.IsInf(f.Load(), -1) || b.Load() {
		t.Fatalf("post-txn loads: %v %v %v %v", u.Load(), i.Load(), f.Load(), b.Load())
	}

	// int64 two's-complement and float64 NaN payloads survive exactly.
	i.Store(math.MinInt64)
	if i.Load() != math.MinInt64 {
		t.Fatal("MinInt64 round trip")
	}
	weirdNaN := math.Float64frombits(0x7FF8_0000_DEAD_BEEF)
	f.Store(weirdNaN)
	if math.Float64bits(f.Load()) != 0x7FF8_0000_DEAD_BEEF {
		t.Fatalf("NaN payload lost: %#x", math.Float64bits(f.Load()))
	}
}

func TestAddT(t *testing.T) {
	u := stm.NewTVar[uint64](10)
	i := stm.NewTVar[int64](-5)
	f := stm.NewTVar[float64](1.5)
	b := stm.NewTVar[bool](false)
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	var gu uint64
	var gi int64
	var gf float64
	if _, err := ex.Run(1, func(tx stm.Tx, _ int) {
		gu = stm.AddT(tx, u, 7)
		gi = stm.AddT(tx, i, -3)
		gf = stm.AddT(tx, f, 0.25)
	}); err != nil {
		t.Fatal(err)
	}
	if gu != 17 || u.Load() != 17 {
		t.Fatalf("uint64 add: %d / %d", gu, u.Load())
	}
	if gi != -8 || i.Load() != -8 {
		t.Fatalf("int64 add: %d / %d", gi, i.Load())
	}
	if gf != 1.75 || f.Load() != 1.75 {
		t.Fatalf("float64 add: %v / %v", gf, f.Load())
	}
	// Non-numeric kinds refuse (as a genuine fault inside a run).
	if _, err := ex.Run(1, func(tx stm.Tx, _ int) { stm.AddT(tx, b, true) }); err == nil {
		t.Fatal("AddT on a bool TVar must fault")
	}
}

func TestTVarWordable(t *testing.T) {
	v := stm.NewTVar[point](point{X: 1, Y: -2})
	if v.NumWords() != 2 {
		t.Fatalf("NumWords = %d, want 2", v.NumWords())
	}
	if got := v.Load(); got != (point{1, -2}) {
		t.Fatalf("Load = %+v", got)
	}
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	var mid point
	if _, err := ex.Run(1, func(tx stm.Tx, _ int) {
		p := stm.ReadT(tx, v)
		p.X, p.Y = p.Y, p.X
		stm.WriteT(tx, v, p)
		mid = stm.ReadT(tx, v)
	}); err != nil {
		t.Fatal(err)
	}
	if mid != (point{-2, 1}) || v.Load() != (point{-2, 1}) {
		t.Fatalf("wordable round trip: mid=%+v load=%+v", mid, v.Load())
	}
}

func TestNewTVarsContiguousLayout(t *testing.T) {
	// Scalar TVars: one word each, IDs consecutive (one backing array).
	vs := stm.NewTVars[uint64](4)
	base := vs[0].Vars()[0].ID()
	for i := range vs {
		ws := vs[i].Vars()
		if len(ws) != 1 || ws[0].ID() != base+uint64(i) {
			t.Fatalf("scalar TVar %d words=%d id=%d want id=%d", i, len(ws), ws[0].ID(), base+uint64(i))
		}
	}
	// Multi-word TVars: NumWords consecutive words per element, elements
	// adjacent in the same backing array.
	ps := stm.NewTVars[point](3)
	pbase := ps[0].Vars()[0].ID()
	for i := range ps {
		ws := ps[i].Vars()
		if len(ws) != 2 {
			t.Fatalf("point TVar %d has %d words", i, len(ws))
		}
		for w, vr := range ws {
			if want := pbase + uint64(2*i+w); vr.ID() != want {
				t.Fatalf("point TVar %d word %d id=%d want %d", i, w, vr.ID(), want)
			}
		}
	}
}

func TestTVarUnsupportedTypePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("string", func() { stm.NewTVar("nope") })
	mustPanic("uint32", func() { stm.NewTVar[uint32](1) })
	// A Wordable implemented with value receivers would deserialize
	// into a copy (every read silently zero); construction must refuse.
	mustPanic("value-receiver Wordable", func() { stm.NewTVar(valueRecvPair{}) })
	mustPanic("zero TVar load", func() {
		var v stm.TVar[uint64]
		v.Load()
	})
	// Inside a transaction the zero-TVar panic is a genuine fault, not
	// a speculative abort: the run must report it, not retry it.
	var v stm.TVar[uint64]
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(1, func(tx stm.Tx, _ int) { stm.ReadT(tx, &v) }); err == nil {
		t.Fatal("zero TVar inside a transaction must fault the run")
	}
}

// TestTVarTypedDeterminism runs a typed mixed-kind workload under
// every ordered algorithm and checks final typed state equals the
// sequential execution — the typed layer must inherit the predefined
// commit order exactly, including for multi-word values.
func TestTVarTypedDeterminism(t *testing.T) {
	n := 4000
	if testing.Short() {
		n = 800
	}
	const lanes = 16

	run := func(alg stm.Algorithm, workers int) ([]uint64, []float64, []point) {
		counts := stm.NewTVars[uint64](lanes)
		sums := stm.NewTVars[float64](lanes)
		pts := stm.NewTVars[point](lanes)
		ex, err := stm.NewExecutor(stm.Config{Algorithm: alg, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(n, func(tx stm.Tx, age int) {
			lane := age % lanes
			c := stm.ReadT(tx, &counts[lane])
			stm.WriteT(tx, &counts[lane], c*3+uint64(age))
			stm.WriteT(tx, &sums[lane], stm.ReadT(tx, &sums[lane])+float64(age)*0.5)
			p := stm.ReadT(tx, &pts[lane])
			p.X += int64(age)
			p.Y -= int64(c % 7)
			stm.WriteT(tx, &pts[lane], p)
		}); err != nil {
			t.Fatal(err)
		}
		cs := make([]uint64, lanes)
		ss := make([]float64, lanes)
		pp := make([]point, lanes)
		for i := 0; i < lanes; i++ {
			cs[i], ss[i], pp[i] = counts[i].Load(), sums[i].Load(), pts[i].Load()
		}
		return cs, ss, pp
	}

	wantC, wantS, wantP := run(stm.Sequential, 1)
	for _, alg := range stm.OrderedAlgorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			gotC, gotS, gotP := run(alg, 8)
			for i := 0; i < lanes; i++ {
				if gotC[i] != wantC[i] || gotS[i] != wantS[i] || gotP[i] != wantP[i] {
					t.Fatalf("lane %d diverged: (%d,%v,%+v) want (%d,%v,%+v)",
						i, gotC[i], gotS[i], gotP[i], wantC[i], wantS[i], wantP[i])
				}
			}
		})
	}
}
