// Package ostm is the root of the OSTM repository: a Go reproduction
// of "Processing Transactions in a Predefined Order" (Saad, Javidi
// Kishi, Jing, Hans, Palmieri — PPoPP 2019).
//
// The public API lives in package stm (ordered software transactional
// memory: OWB, OUL, OUL-Steal and the paper's baselines). The
// benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package ostm
