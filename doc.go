// Package ostm is the root of the OSTM repository: a Go reproduction
// of "Processing Transactions in a Predefined Order" (Saad, Javidi
// Kishi, Jing, Hans, Palmieri — PPoPP 2019), grown toward a
// production-grade ordered transaction service.
//
// The public API lives in package stm: ordered software transactional
// memory (OWB, OUL, OUL-Steal and the paper's baselines) behind two
// front-ends — Executor for one-shot batches and Pipeline, a
// long-lived Submit/Future streaming service — with a typed layer on
// top (v2): generic TVar[T] variables, value-returning transactions
// whose TicketOf[R] futures latch the committed result, context-aware
// submission and waits, and typed durable codecs that replay through
// the write-ahead log. Package stm/serve carries the submit surface
// over the network (an HTTP/2 cleartext streaming front-end answering
// in commit order), and cmd/ordersvc runs it as a standalone service
// with recovery, drain and a load generator. The benchmarks in
// bench_test.go and the cmd tools regenerate the paper's evaluation.
//
// See README.md for a quickstart and package map, DESIGN.md for the
// system inventory and deliberate departures from the paper's
// pseudocode, and EXPERIMENTS.md for how to reproduce and track
// measurements.
package ostm
