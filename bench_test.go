// Benchmarks regenerating the paper's evaluation (one benchmark per
// table/figure, scaled-down defaults; the cmd/ tools run the full
// sweeps). Shapes — who wins, by roughly what factor — are the
// reproduction target; see EXPERIMENTS.md.
//
// Note: wall-clock benches on a single-hardware-thread host cannot
// show parallel speedup; BenchmarkSimFigure* regenerate the scaling
// shape in virtual time (internal/simcpu).
package ostm

import (
	"fmt"
	"testing"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/internal/harness"
	"github.com/orderedstm/ostm/internal/micro"
	"github.com/orderedstm/ostm/internal/parsec/blackscholes"
	"github.com/orderedstm/ostm/internal/parsec/fluidanimate"
	"github.com/orderedstm/ostm/internal/parsec/swaptions"
	"github.com/orderedstm/ostm/internal/simcpu"
	"github.com/orderedstm/ostm/internal/spec/equake"
	"github.com/orderedstm/ostm/internal/stamp/genome"
	"github.com/orderedstm/ostm/internal/stamp/intruder"
	"github.com/orderedstm/ostm/internal/stamp/kmeans"
	"github.com/orderedstm/ostm/internal/stamp/labyrinth"
	"github.com/orderedstm/ostm/internal/stamp/ssca2"
	"github.com/orderedstm/ostm/internal/stamp/vacation"
	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/shard"
)

const (
	benchTxns = 2000
	benchPool = 1 << 14
)

// runMicro executes one micro-benchmark configuration b.N times and
// reports throughput and abort metrics.
func runMicro(b *testing.B, alg stm.Algorithm, workers int, cfg micro.Config) {
	b.Helper()
	w := micro.New(cfg)
	var commits, aborts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		res, err := harness.Exec(alg, workers, w.Txns(), w.Body(), nil)
		if err != nil {
			b.Fatal(err)
		}
		commits += uint64(res.N)
		aborts += res.Stats.TotalAborts()
	}
	b.StopTimer()
	b.ReportMetric(float64(commits)/b.Elapsed().Seconds(), "tx/s")
	if commits > 0 {
		b.ReportMetric(100*float64(aborts)/float64(commits), "aborts%")
	}
}

// BenchmarkFigure2 — peak-throughput comparison of every competitor
// (ordered, unordered, sequential) on the four micro-benchmarks
// (short transactions; cmd/microbench sweeps lengths and threads).
func BenchmarkFigure2(b *testing.B) {
	algos := []stm.Algorithm{
		stm.TL2, stm.OrderedTL2, stm.NOrec, stm.OrderedNOrec,
		stm.UndoLogVis, stm.OrderedUndoLogVis, stm.UndoLogInvis, stm.OrderedUndoLogInvis,
		stm.OUL, stm.OULSteal, stm.OWB, stm.STMLite, stm.Sequential,
	}
	for _, bench := range micro.Benches() {
		for _, alg := range algos {
			workers := 4
			if alg == stm.Sequential {
				workers = 1
			}
			b.Run(fmt.Sprintf("%v/%v", bench, alg), func(b *testing.B) {
				runMicro(b, alg, workers, micro.Config{
					Bench: bench, Length: micro.Short, Txns: benchTxns, PoolSize: benchPool,
				})
			})
		}
	}
}

// figure34Algos is the ordered-competitor set of Figures 3 and 4.
func figure34Algos() []stm.Algorithm {
	return []stm.Algorithm{stm.OUL, stm.OULSteal, stm.OWB, stm.OrderedTL2, stm.STMLite}
}

// BenchmarkFigure3 — Disjoint and RNW1 throughput/abort series across
// thread counts.
func BenchmarkFigure3(b *testing.B) {
	for _, bench := range []micro.Bench{micro.Disjoint, micro.RNW1} {
		for _, workers := range []int{1, 8} {
			for _, alg := range figure34Algos() {
				b.Run(fmt.Sprintf("%v/w%d/%v", bench, workers, alg), func(b *testing.B) {
					runMicro(b, alg, workers, micro.Config{
						Bench: bench, Length: micro.Short, Txns: benchTxns, PoolSize: benchPool, YieldEvery: 8,
					})
				})
			}
		}
	}
}

// BenchmarkFigure4 — RWN and MCAS throughput/abort series.
func BenchmarkFigure4(b *testing.B) {
	for _, bench := range []micro.Bench{micro.RWN, micro.MCAS} {
		for _, workers := range []int{1, 8} {
			for _, alg := range figure34Algos() {
				b.Run(fmt.Sprintf("%v/w%d/%v", bench, workers, alg), func(b *testing.B) {
					runMicro(b, alg, workers, micro.Config{
						Bench: bench, Length: micro.Short, Txns: benchTxns, PoolSize: benchPool, YieldEvery: 8,
					})
				})
			}
		}
	}
}

// BenchmarkFigure5 — abort-cause breakdown for the three contributed
// algorithms on a contended RWN workload (fractions reported as
// metrics).
func BenchmarkFigure5(b *testing.B) {
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal} {
		b.Run(alg.String(), func(b *testing.B) {
			w := micro.New(micro.Config{
				Bench: micro.RWN, Length: micro.Short, Txns: benchTxns, PoolSize: 1 << 8, YieldEvery: 2,
			})
			var last stm.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Reset()
				res, err := harness.Exec(alg, 8, w.Txns(), w.Body(), nil)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			for cat, frac := range last.Stats.Breakdown() {
				b.ReportMetric(frac, cat)
			}
			b.ReportMetric(100*last.Stats.AbortRatio(), "aborts%")
		})
	}
}

// stampApp abstracts the Figure 6/7 application drivers.
type stampApp interface {
	Run(r apps.Runner) (stm.Result, error)
	Verify() error
}

func runApp(b *testing.B, build func() stampApp, alg stm.Algorithm, workers int) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := build() // fresh shared state per iteration
		b.StartTimer()
		if _, err := a.Run(apps.Runner{Alg: alg, Workers: workers}); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := a.Verify(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func figure67Algos() []stm.Algorithm {
	return []stm.Algorithm{stm.Sequential, stm.OUL, stm.OWB}
}

// BenchmarkFigure6 — STAMP execution times (kmeans low/high, genome,
// ssca2, vacation low/high, labyrinth, intruder).
func BenchmarkFigure6(b *testing.B) {
	appsList := []struct {
		name  string
		build func() stampApp
	}{
		{"KmeansLow", func() stampApp {
			cfg := kmeans.LowContention()
			cfg.Points, cfg.Iterations = 512, 2
			return kmeans.New(cfg)
		}},
		{"KmeansHigh", func() stampApp {
			cfg := kmeans.HighContention()
			cfg.Points, cfg.Iterations = 512, 2
			return kmeans.New(cfg)
		}},
		{"Genome", func() stampApp { return genome.New(genome.Config{GeneLength: 1024}) }},
		{"SSCA2", func() stampApp { return ssca2.New(ssca2.Config{Vertices: 256, Edges: 2048}) }},
		{"VacationLow", func() stampApp {
			cfg := vacation.LowContention()
			cfg.Sessions = 1024
			return vacation.New(cfg)
		}},
		{"VacationHigh", func() stampApp {
			cfg := vacation.HighContention()
			cfg.Sessions = 1024
			return vacation.New(cfg)
		}},
		{"Labyrinth", func() stampApp { return labyrinth.New(labyrinth.Config{X: 16, Y: 16, Z: 2, Pairs: 24}) }},
		{"Intruder", func() stampApp { return intruder.New(intruder.Config{Flows: 128}) }},
	}
	for _, app := range appsList {
		for _, alg := range figure67Algos() {
			workers := 4
			if alg == stm.Sequential {
				workers = 1
			}
			b.Run(fmt.Sprintf("%s/%v", app.name, alg), func(b *testing.B) {
				runApp(b, app.build, alg, workers)
			})
		}
	}
}

// BenchmarkFigure7 — PARSEC (blackscholes, swaptions, fluidanimate)
// and SPEC2000 equake execution times.
func BenchmarkFigure7(b *testing.B) {
	appsList := []struct {
		name  string
		build func() stampApp
	}{
		{"Blackscholes", func() stampApp { return blackscholes.New(blackscholes.Config{Options: 1024}) }},
		{"Swaptions", func() stampApp { return swaptions.New(swaptions.Config{Swaptions: 32, Trials: 32}) }},
		{"Fluidanimate", func() stampApp { return fluidanimate.New(fluidanimate.Config{CellsX: 6, CellsY: 6, Steps: 2}) }},
		{"Equake", func() stampApp { return equake.New(equake.Config{Nodes: 300, Steps: 4}) }},
	}
	for _, app := range appsList {
		for _, alg := range figure67Algos() {
			workers := 4
			if alg == stm.Sequential {
				workers = 1
			}
			b.Run(fmt.Sprintf("%s/%v", app.name, alg), func(b *testing.B) {
				runApp(b, app.build, alg, workers)
			})
		}
	}
}

// runSubmitCommit drives one long-lived pipeline with a closed-loop
// single client for b.N transactions, reporting allocations so
// regressions on the Submit→commit path show up in `go test -bench`.
// The body is reused across submissions (closure allocation is the
// caller's business, not the pipeline's); with descriptor recycling
// the amortized cost is the Ticket and its channel — 2 allocs/op.
func runSubmitCommit(b *testing.B, cfg stm.Config) {
	b.Helper()
	p, err := stm.NewPipeline(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	vs := stm.NewVars(benchPool)
	body := func(tx stm.Tx, age int) {
		i := uint64(age) % benchPool
		j := (i + 7) % benchPool
		tx.Write(&vs[j], tx.Read(&vs[i])+1)
	}
	// Warm the lazily-allocated engine metadata (reader-slot arrays)
	// and the descriptor pools so the measured window is steady state.
	warm, err := p.Submit(func(tx stm.Tx, age int) {
		for i := range vs {
			tx.Read(&vs[i])
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := warm.Wait(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk, err := p.Submit(body)
		if err != nil {
			b.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
}

// BenchmarkSubmitCommit — allocation and latency of the streaming
// Submit→commit path for every ordered engine (the zero-alloc hot-path
// target; see DESIGN.md §8). FreshDescriptors variants quantify what
// recycling saves.
func BenchmarkSubmitCommit(b *testing.B) {
	for _, alg := range stm.OrderedAlgorithms() {
		b.Run(alg.String(), func(b *testing.B) {
			runSubmitCommit(b, stm.Config{Algorithm: alg, Workers: 2})
		})
	}
	b.Run("OUL/fresh", func(b *testing.B) {
		runSubmitCommit(b, stm.Config{Algorithm: stm.OUL, Workers: 2, FreshDescriptors: true})
	})
	b.Run("OUL/batch32", func(b *testing.B) {
		p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OUL, Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		vs := stm.NewVars(benchPool)
		body := func(tx stm.Tx, age int) {
			i := uint64(age) % benchPool
			tx.Write(&vs[i], tx.Read(&vs[i])+1)
		}
		bodies := make([]stm.Body, 32)
		for i := range bodies {
			bodies[i] = body
		}
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; {
			k := len(bodies)
			if rem := b.N - n; k > rem {
				k = rem
			}
			tks, err := p.SubmitBatch(bodies[:k])
			if err != nil {
				b.Fatal(err)
			}
			for _, tk := range tks {
				if err := tk.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			n += k
		}
	})
}

// BenchmarkSubmitCommitSharded — the same closed-loop path through the
// sharded router (partition-local workload, declared access sets).
func BenchmarkSubmitCommitSharded(b *testing.B) {
	sp, err := shard.New(shard.Config{Shards: 2, Pipeline: stm.Config{Algorithm: stm.OUL, Workers: 2}})
	if err != nil {
		b.Fatal(err)
	}
	defer sp.Close()
	vs := stm.NewVars(benchPool)
	var byShard [2][]*stm.Var
	for i := range vs {
		s := sp.ShardOf(&vs[i])
		byShard[s] = append(byShard[s], &vs[i])
	}
	// One reusable parameter block: the body reads its target through
	// it, and it is only rewritten after the previous ticket resolved,
	// so the loop allocates nothing beyond the router's own work.
	var target *stm.Var
	body := func(tx stm.Tx, age int) {
		tx.Write(target, tx.Read(target)+1)
	}
	declared := make([]*stm.Var, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := i & 1
		target = byShard[s][i%len(byShard[s])]
		declared[0] = target
		tk, err := sp.Submit(stm.Touches(declared...), body)
		if err != nil {
			b.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimFigure234 — the thread-scaling shape of Figures 2–4 in
// virtual time on the simulated multicore (commits per k virtual
// cycles reported as a metric; wall time here is simulator speed, not
// the result).
func BenchmarkSimFigure234(b *testing.B) {
	algos := []simcpu.Algo{simcpu.OUL, simcpu.OULSteal, simcpu.OWB,
		simcpu.OrderedTL2, simcpu.OrderedUndoLogVis, simcpu.STMLite}
	for _, bench := range micro.Benches() {
		traces := simcpu.GenTraces(bench, micro.Short, 4000, benchPool, 7)
		for _, cores := range []int{1, 8} {
			for _, alg := range algos {
				b.Run(fmt.Sprintf("%v/c%d/%v", bench, cores, alg), func(b *testing.B) {
					var res simcpu.Result
					for i := 0; i < b.N; i++ {
						res = simcpu.Simulate(alg, traces, cores, simcpu.DefaultParams())
					}
					b.ReportMetric(res.ThroughputPerKCycle(), "tx/kcycle")
					b.ReportMetric(100*res.AbortRatio(), "aborts%")
				})
			}
		}
	}
}

// BenchmarkAblationSteal — OUL vs OUL-Steal on a write-heavy
// contended workload (the paper's own ablation, §6.1/Figure 5d).
func BenchmarkAblationSteal(b *testing.B) {
	for _, alg := range []stm.Algorithm{stm.OUL, stm.OULSteal} {
		b.Run(alg.String(), func(b *testing.B) {
			runMicro(b, alg, 8, micro.Config{
				Bench: micro.RWN, Length: micro.Short, Txns: benchTxns, PoolSize: 1 << 8, YieldEvery: 2,
			})
		})
	}
}

// BenchmarkAblationReaderSlots — bounded visible-reader array size
// (the paper fixes 40; §8 notes the bound matters).
func BenchmarkAblationReaderSlots(b *testing.B) {
	for _, slots := range []int{2, 8, 40} {
		b.Run(fmt.Sprintf("slots%d", slots), func(b *testing.B) {
			w := micro.New(micro.Config{
				Bench: micro.RNW1, Length: micro.Short, Txns: benchTxns, PoolSize: 1 << 8, YieldEvery: 4,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Reset()
				if _, err := harness.Exec(stm.OUL, 8, w.Txns(), w.Body(), func(c *stm.Config) {
					c.MaxReaders = slots
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLockTable — lock-table size vs aliasing false
// conflicts (the paper maps locks from address LSBs).
func BenchmarkAblationLockTable(b *testing.B) {
	for _, bits := range []uint{6, 10, 16} {
		b.Run(fmt.Sprintf("bits%d", bits), func(b *testing.B) {
			w := micro.New(micro.Config{
				Bench: micro.RNW1, Length: micro.Short, Txns: benchTxns, PoolSize: benchPool, YieldEvery: 8,
			})
			var aborts, commits uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Reset()
				res, err := harness.Exec(stm.OUL, 8, w.Txns(), w.Body(), func(c *stm.Config) {
					c.TableBits = bits
				})
				if err != nil {
					b.Fatal(err)
				}
				aborts += res.Stats.TotalAborts()
				commits += uint64(res.N)
			}
			b.StopTimer()
			if commits > 0 {
				b.ReportMetric(100*float64(aborts)/float64(commits), "aborts%")
			}
		})
	}
}

// BenchmarkAblationWindow — Algorithm 5's run-ahead window (MAX).
func BenchmarkAblationWindow(b *testing.B) {
	for _, window := range []int{4, 32, 256} {
		b.Run(fmt.Sprintf("window%d", window), func(b *testing.B) {
			w := micro.New(micro.Config{
				Bench: micro.RNW1, Length: micro.Short, Txns: benchTxns, PoolSize: benchPool,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Reset()
				if _, err := harness.Exec(stm.OWB, 8, w.Txns(), w.Body(), func(c *stm.Config) {
					c.Window = window
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSigBits — STMLite signature size (the paper
// recommends 32–1024 and uses 64).
func BenchmarkAblationSigBits(b *testing.B) {
	for _, bits := range []uint{64, 256, 1024} {
		b.Run(fmt.Sprintf("bits%d", bits), func(b *testing.B) {
			w := micro.New(micro.Config{
				Bench: micro.RWN, Length: micro.Short, Txns: benchTxns, PoolSize: benchPool, YieldEvery: 8,
			})
			var aborts uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Reset()
				res, err := harness.Exec(stm.STMLite, 8, w.Txns(), w.Body(), func(c *stm.Config) {
					c.SigBits = bits
				})
				if err != nil {
					b.Fatal(err)
				}
				aborts += res.Stats.TotalAborts()
			}
			b.StopTimer()
			b.ReportMetric(float64(aborts)/float64(b.N), "aborts/run")
		})
	}
}
